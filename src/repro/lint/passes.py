"""The lint pass manager: compile once, analyze once, run many rules.

:class:`AnalysisContext` owns every expensive artifact — the linked
AST, the class table, the compiled bytecode, per-method CFGs, the CHA
call graph, the class hierarchy, thrown-exception sets, and the
interprocedural use analysis — each built lazily and exactly once.
Every registered pass receives the same context, so N rules cost one
compilation and one run of each underlying analysis no matter how they
overlap (the context counts builds; ``tests/lint/test_passes.py`` pins
the reuse).

:class:`PassManager` runs registered :class:`Pass` objects in
dependency order: a pass declares ``requires`` (names of passes whose
results it consumes) and the manager topologically sorts the requested
subset, runs each at most once, and caches results. Rule passes emit
:class:`~repro.lint.diagnostics.Diagnostic` objects into the shared
:class:`~repro.lint.diagnostics.LintResult`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.exceptions import ThrownExceptions
from repro.analysis.hierarchy import ClassHierarchy
from repro.bytecode.program import CompiledMethod, CompiledProgram
from repro.errors import ReproError
from repro.lint.diagnostics import Diagnostic, LintResult, SourceSpan
from repro.lint.interproc import InterproceduralUseAnalysis
from repro.lint.rules import (
    ALL_RULES,
    DRAG001,
    DRAG002,
    DRAG003,
    DRAG004,
    DRAG005,
    DRAG006,
    DRAG007,
    DRAG008,
)
from repro.mjava import ast
from repro.mjava.compiler import compile_program
from repro.mjava.sema import ClassTable


class LintError(ReproError):
    """Pass-manager misconfiguration (unknown pass, dependency cycle)."""


class AnalysisContext:
    """Shared, lazily-built analysis artifacts for one program."""

    def __init__(self, program_ast: ast.Program, main_class: str) -> None:
        self.program_ast = program_ast
        self.main_class = main_class
        self._table: Optional[ClassTable] = None
        self._compiled: Optional[CompiledProgram] = None
        self._callgraph: Optional[CallGraph] = None
        self._hierarchy: Optional[ClassHierarchy] = None
        self._exceptions: Optional[ThrownExceptions] = None
        self._interproc: Optional[InterproceduralUseAnalysis] = None
        self._heap_liveness = None
        self._cfgs: Dict[int, ControlFlowGraph] = {}
        # Dynamic evidence, attached by the caller rather than lazily
        # built: a repro.snapshot.SnapshotAnalysis of a captured heap
        # and the run's DragAnalysis. DRAG008 is the only consumer and
        # stays silent when no snapshot is attached, so purely static
        # lint runs are unchanged.
        self.snapshot = None
        self.drag = None
        # Build accounting, so tests can pin "exactly once".
        self.build_counts: Dict[str, int] = {}

    def _count(self, what: str) -> None:
        self.build_counts[what] = self.build_counts.get(what, 0) + 1

    @property
    def table(self) -> ClassTable:
        if self._table is None:
            self._count("table")
            self._table = ClassTable(self.program_ast)
        return self._table

    @property
    def compiled(self) -> CompiledProgram:
        if self._compiled is None:
            self._count("compile")
            self._compiled = compile_program(
                self.program_ast, main_class=self.main_class, table=self.table
            )
        return self._compiled

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._count("callgraph")
            self._callgraph = CallGraph(self.compiled)
        return self._callgraph

    @property
    def hierarchy(self) -> ClassHierarchy:
        if self._hierarchy is None:
            self._count("hierarchy")
            self._hierarchy = ClassHierarchy(self.table)
        return self._hierarchy

    @property
    def exceptions(self) -> ThrownExceptions:
        if self._exceptions is None:
            self._count("exceptions")
            self._exceptions = ThrownExceptions(self.compiled, self.callgraph)
        return self._exceptions

    @property
    def interproc(self) -> InterproceduralUseAnalysis:
        if self._interproc is None:
            self._count("interproc")
            self._interproc = InterproceduralUseAnalysis(self)
        return self._interproc

    @property
    def heap_liveness(self):
        if self._heap_liveness is None:
            from repro.analysis.heap_liveness import HeapLivenessAnalysis

            self._count("heap-liveness")
            self._heap_liveness = HeapLivenessAnalysis(self.compiled, self.cfg)
        return self._heap_liveness

    def cfg(self, method: CompiledMethod) -> ControlFlowGraph:
        """Per-method CFG, built once per method across all passes."""
        key = id(method)
        cfg = self._cfgs.get(key)
        if cfg is None:
            self._count("cfg")
            cfg = self._cfgs[key] = build_cfg(method)
        return cfg


class Pass:
    """One registered analysis or rule pass."""

    def __init__(
        self,
        name: str,
        fn: Callable[[AnalysisContext, LintResult], object],
        requires: Sequence[str] = (),
        rule_id: Optional[str] = None,
    ) -> None:
        self.name = name
        self.fn = fn
        self.requires = tuple(requires)
        self.rule_id = rule_id  # set for rule passes, None for analyses

    def __repr__(self) -> str:
        return f"<pass {self.name} requires={list(self.requires)}>"


class PassManager:
    """Registers passes, orders them by dependencies, runs each once.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, or None) wraps each
    pass execution in a ``lint.pass.<name>`` span and feeds the
    ``repro_lint_pass_seconds`` histogram; per-pass wall durations are
    always kept in :attr:`durations` for the CLI summary.
    """

    def __init__(self, context: AnalysisContext, telemetry=None) -> None:
        self.context = context
        self.telemetry = telemetry
        self.passes: Dict[str, Pass] = {}
        self.results: Dict[str, object] = {}
        self.run_counts: Dict[str, int] = {}
        self.durations: Dict[str, float] = {}

    def register(self, pass_: Pass) -> None:
        if pass_.name in self.passes:
            raise LintError(f"pass {pass_.name!r} registered twice")
        self.passes[pass_.name] = pass_

    def schedule(self, names: Sequence[str]) -> List[str]:
        """Topological order covering ``names`` and their transitive
        dependencies; deterministic (requested order, deps first)."""
        order: List[str] = []
        visiting: Set[str] = set()
        done: Set[str] = set()

        def visit(name: str) -> None:
            if name in done:
                return
            if name in visiting:
                raise LintError(f"dependency cycle through pass {name!r}")
            pass_ = self.passes.get(name)
            if pass_ is None:
                raise LintError(f"unknown pass {name!r}")
            visiting.add(name)
            for dep in pass_.requires:
                visit(dep)
            visiting.discard(name)
            done.add(name)
            order.append(name)

        for name in names:
            visit(name)
        return order

    def run(self, name: str, result: LintResult):
        """Run one pass (dependencies first); cached after the first
        call, so shared dependencies execute exactly once."""
        if name in self.results:
            return self.results[name]
        telemetry = self.telemetry
        for dep in self.schedule([name]):
            if dep in self.results:
                continue
            self.run_counts[dep] = self.run_counts.get(dep, 0) + 1
            started = perf_counter()
            if telemetry is None:
                self.results[dep] = self.passes[dep].fn(self.context, result)
            else:
                with telemetry.span(f"lint.pass.{dep}", category="lint"):
                    self.results[dep] = self.passes[dep].fn(self.context, result)
            elapsed = perf_counter() - started
            self.durations[dep] = self.durations.get(dep, 0.0) + elapsed
            if telemetry is not None:
                telemetry.record_lint_pass(dep, elapsed)
        return self.results[name]

    def run_all(self, result: LintResult, rules: Optional[Sequence[str]] = None) -> LintResult:
        """Run every rule pass (or the requested rule IDs) and collect
        diagnostics into ``result``."""
        wanted = set(rules) if rules is not None else None
        for name in self.schedule(sorted(self.passes)):
            pass_ = self.passes[name]
            if pass_.rule_id is None:
                continue  # analyses run on demand, as dependencies
            if wanted is not None and pass_.rule_id not in wanted:
                continue
            self.run(name, result)
        return result


# ---------------------------------------------------------------------------
# The standard pass pipeline
# ---------------------------------------------------------------------------


def _pass_callgraph(ctx: AnalysisContext, result: LintResult):
    return ctx.callgraph


def _pass_exceptions(ctx: AnalysisContext, result: LintResult):
    return ctx.exceptions


def _pass_interproc(ctx: AnalysisContext, result: LintResult):
    # Force the expensive pieces so dependents see a warm cache.
    analysis = ctx.interproc
    analysis.dead
    return analysis


def _member_of_line(decl: ast.ClassDecl, line: int) -> str:
    """Best-effort member name containing a source line (for spans)."""
    for ctor in decl.ctors:
        for node in ctor.body.walk():
            if node.pos.line == line:
                return "<init>"
    for method in decl.methods:
        if method.body is None:
            continue
        for node in method.body.walk():
            if node.pos.line == line:
                return method.name
    for field in decl.fields:
        if field.pos.line == line:
            return "<clinit>" if field.mods.static else "<init>"
    return "<init>"


def _pass_drag001(ctx: AnalysisContext, result: LintResult):
    """Never-used allocations: dead fields/statics, dead locals,
    write-only arrays — the exact candidate set dead-code removal acts
    on (same function, same gates)."""
    dead = ctx.interproc.dead
    program = ctx.program_ast
    # No library exemption anywhere in this pass: the candidate set is
    # the rewriter's own, and the paper's db fix removes the JDK's
    # never-used Locale tables — the linter must say so too.
    for class_name, field_name in sorted(dead.dead_fields | dead.dead_statics):
        decl = program.find_class(class_name)
        compiled_cls = ctx.compiled.classes.get(class_name)
        if decl is None or compiled_cls is None:
            continue
        static = (class_name, field_name) in dead.dead_statics
        spans = _field_store_spans(ctx, decl, field_name)
        if not spans:
            field_decl = next((f for f in decl.fields if f.name == field_name), None)
            line = field_decl.pos.line if field_decl is not None else decl.pos.line
            spans = [SourceSpan(class_name, "<clinit>" if static else "<init>", line)]
        primary = spans[0]
        result.add(
            Diagnostic(
                DRAG001,
                primary,
                f"{'static ' if static else ''}field {class_name}.{field_name} "
                "is written but never read in any reachable method; its "
                "allocating stores are removable dead code",
                subject=("field", class_name, field_name),
                extra={"alt_labels": [s.label for s in spans[1:]]},
            )
        )
    for qualified, names in sorted(dead.dead_locals.items()):
        class_name, _, method_name = qualified.partition(".")
        if class_name not in ctx.compiled.classes:
            continue
        for var in sorted(names):
            line = _local_decl_line(ctx, class_name, method_name, var)
            result.add(
                Diagnostic(
                    DRAG001,
                    SourceSpan(class_name, method_name, line),
                    f"local {var} in {qualified} is assigned but never "
                    "read; its allocation is removable dead code",
                    subject=("local", class_name, method_name, var),
                )
            )
    for class_name, (line, _col, _kind) in sorted(dead.array_store_sigs):
        if class_name not in ctx.compiled.classes:
            continue
        decl = program.find_class(class_name)
        member = _member_of_line(decl, line) if decl is not None else "<init>"
        result.add(
            Diagnostic(
                DRAG001,
                SourceSpan(class_name, member, line),
                f"array element store at {class_name}:{line} fills a "
                "write-only array; the stored allocation is never read",
                subject=("array-store", class_name, line),
            )
        )
    return dead


def _field_store_spans(ctx: AnalysisContext, decl: ast.ClassDecl, field_name: str):
    """Source spans of every store to a field whose RHS allocates —
    these are the allocation sites the profiler will attribute drag to."""
    spans = []
    for field in decl.fields:
        if field.name == field_name and field.init is not None:
            member = "<clinit>" if field.mods.static else "<init>"
            spans.append(SourceSpan(decl.name, member, field.pos.line))
    members = [("<init>", ctor.body) for ctor in decl.ctors] + [
        (m.name, m.body) for m in decl.methods if m.body is not None
    ]
    for member_name, body in members:
        for node in body.walk():
            if not isinstance(node, ast.Assign):
                continue
            target = node.target
            hits = (isinstance(target, ast.Name) and target.ident == field_name) or (
                isinstance(target, ast.FieldAccess)
                and target.name == field_name
                and isinstance(target.target, ast.This)
            )
            if hits:
                spans.append(SourceSpan(decl.name, member_name, node.pos.line))
    return spans


def _local_decl_line(ctx: AnalysisContext, class_name: str, method_name: str, var: str) -> int:
    decl = ctx.program_ast.find_class(class_name)
    if decl is not None:
        for method in decl.methods:
            if method.name != method_name or method.body is None:
                continue
            for node in method.body.walk():
                if isinstance(node, ast.VarDecl) and node.name == var:
                    return node.pos.line
        for ctor in decl.ctors if method_name == "<init>" else []:
            for node in ctor.body.walk():
                if isinstance(node, ast.VarDecl) and node.name == var:
                    return node.pos.line
    cls = ctx.compiled.classes.get(class_name)
    return cls.line if cls is not None else 0


def _instantiated_classes(ctx: AnalysisContext) -> Set[str]:
    """Class names instantiated anywhere in reachable code."""
    from repro.bytecode.opcodes import Op

    out: Set[str] = set()
    for method in ctx.callgraph.reachable_compiled_methods():
        for instr in method.code or ():
            if instr.op == Op.NEWINIT:
                out.add(instr.args[0])
    return out


def _pass_drag002(ctx: AnalysisContext, result: LintResult):
    """Droppable references: liveness-safe early nulling points for
    heap-holding locals, and logical-size array slots."""
    from repro.analysis.array_liveness import logical_size_pairs, removal_points

    droppables = ctx.interproc.droppable_locals()
    for item in droppables:
        result.add(
            Diagnostic(
                DRAG002,
                SourceSpan(item.class_name, item.method_name, item.alloc_line),
                f"local {item.var_name} in {item.class_name}."
                f"{item.method_name} has no use after line "
                f"{item.null_after_line} but stays reachable for "
                f"{item.trailing_lines} more line(s); assign null after "
                f"line {item.null_after_line}",
                subject=("local", item.class_name, item.method_name, item.var_name),
                extra={"null_after_line": item.null_after_line},
            )
        )
    # Library classes participate too when the program actually
    # instantiates them — the paper's jess rewrite clears slots of the
    # JDK's own Vector, so "library" is no exemption here.
    instantiated = _instantiated_classes(ctx)
    for decl in ctx.program_ast.classes:
        compiled_cls = ctx.compiled.classes.get(decl.name)
        if compiled_cls is None:
            continue
        if compiled_cls.is_library and decl.name not in instantiated:
            continue
        for pair in logical_size_pairs(ctx.table, decl.name):
            points = removal_points(ctx.table, decl.name, pair)
            if not points:
                continue
            member, stmt = points[0]
            array_field, size_field = pair
            result.add(
                Diagnostic(
                    DRAG002,
                    SourceSpan(decl.name, member, stmt.pos.line),
                    f"{decl.name}.{array_field} is a logical-size array "
                    f"bounded by {size_field}: elements at indices >= "
                    f"{size_field} are dead; clear "
                    f"{array_field}[{size_field}] after each removal "
                    f"({len(points)} removal point(s))",
                    subject=("array", decl.name, array_field, size_field),
                )
            )
    return droppables


def _pass_drag003(ctx: AnalysisContext, result: LintResult):
    """Lazy-allocation candidates, with §3.3.3 safety gates graded
    into the severity: all gates pass → warning; otherwise note."""
    candidates = ctx.interproc.lazy_field_candidates()
    for cand in candidates:
        gates_failed = []
        if not cand.single_assignment:
            gates_failed.append("field is assigned more than once")
        if not cand.constant_args:
            gates_failed.append("constructor args are not constants")
        if not cand.ctor_lazy_safe:
            gates_failed.append("constructor is not provably pure")
        if not cand.oom_unhandled:
            gates_failed.append("an OutOfMemoryError handler exists")
        severity = "warning" if not gates_failed else "note"
        message = (
            f"{cand.class_name}.{cand.field_name} eagerly allocates "
            f"{cand.allocated} in its constructor"
        )
        if cand.definitely_used:
            message += (
                "; note: the field is read on every program path, so "
                "laziness only delays (not avoids) the allocation"
            )
        if gates_failed:
            message += "; not auto-rewritable: " + "; ".join(gates_failed)
        else:
            message += "; allocate on first use instead"
        result.add(
            Diagnostic(
                DRAG003,
                SourceSpan(cand.class_name, "<init>", cand.alloc_line),
                message,
                severity=severity,
                subject=("field", cand.class_name, cand.field_name),
                extra={"all_gates_pass": cand.all_gates_pass,
                       "definitely_used": cand.definitely_used},
            )
        )
    return candidates


def _pass_drag004(ctx: AnalysisContext, result: LintResult):
    """Unreachable methods (application code only)."""
    unreachable = ctx.callgraph.unreachable_methods(include_library=False)
    for class_name, method_name in unreachable:
        cls = ctx.compiled.classes.get(class_name)
        method = cls.methods.get(method_name) if cls is not None else None
        line = method.line if method is not None else 0
        result.add(
            Diagnostic(
                DRAG004,
                SourceSpan(class_name, method_name, line),
                f"method {class_name}.{method_name} is unreachable from "
                "main and every static initializer; it (and its "
                "allocations) can be deleted",
                subject=("method", class_name, method_name),
            )
        )
    return unreachable


#: Array allocations at or above this many bytes are "large" for DRAG005.
OVERSIZED_ARRAY_BYTES = 2048

_ELEM_BYTES = {"int": 4, "char": 2, "boolean": 1}


def _pass_drag005(ctx: AnalysisContext, result: LintResult):
    """Constant-length array allocations reserving a large block."""
    from repro.analysis.array_liveness import logical_size_pairs

    findings = []
    for decl in ctx.program_ast.classes:
        compiled_cls = ctx.compiled.classes.get(decl.name)
        if compiled_cls is None or compiled_cls.is_library:
            continue
        pairs = dict(logical_size_pairs(ctx.table, decl.name))
        members = [("<init>", ctor.body) for ctor in decl.ctors] + [
            (m.name, m.body) for m in decl.methods if m.body is not None
        ]
        for field in decl.fields:
            if field.init is not None:
                members.append(
                    ("<clinit>" if field.mods.static else "<init>",
                     ast.Block([ast.ExprStmt(field.init, pos=field.pos)], pos=field.pos))
                )
        for member_name, body in members:
            for node in body.walk():
                if not isinstance(node, ast.NewArray):
                    continue
                if not isinstance(node.length, ast.IntLit):
                    continue
                elem = getattr(node.element_type, "name", str(node.element_type))
                nbytes = _ELEM_BYTES.get(elem, 4) * node.length.value
                if nbytes < OVERSIZED_ARRAY_BYTES:
                    continue
                message = (
                    f"constant-length array of {node.length.value} "
                    f"elements (~{nbytes} bytes) allocated up front"
                )
                suggestion = "size on demand, or allocate lazily"
                field_owner = _assigned_field_name(body, node)
                if field_owner is not None and field_owner in pairs:
                    message += (
                        f"; {decl.name}.{field_owner} tracks its logical "
                        f"size in {pairs[field_owner]}, so slots beyond it "
                        "are dead capacity"
                    )
                    suggestion = "clear dead slots / grow on demand"
                result.add(
                    Diagnostic(
                        DRAG005,
                        SourceSpan(decl.name, member_name, node.pos.line),
                        message + f"; {suggestion}",
                        subject=("array", decl.name, member_name, node.pos.line),
                    )
                )
                findings.append((decl.name, member_name, node.pos.line, nbytes))
    return findings


def _assigned_field_name(body: ast.Block, alloc: ast.NewArray):
    for node in body.walk():
        if isinstance(node, ast.Assign) and node.value is alloc:
            target = node.target
            if isinstance(target, ast.Name):
                return target.ident
            if isinstance(target, ast.FieldAccess) and isinstance(target.target, ast.This):
                return target.name
    return None


def _pass_heap_liveness(ctx: AnalysisContext, result: LintResult):
    """Build the whole-program heap liveness analysis; its soundness
    notes (escape-hatch degradations, widenings) become result notes."""
    analysis = ctx.heap_liveness
    for note in analysis.notes:
        if note not in result.notes:
            result.notes.append(note)
    return analysis


def _pass_drag006(ctx: AnalysisContext, result: LintResult):
    """Dead heap paths: tokens written but never observably read.

    Stores already covered by DRAG001's dead sets are skipped — there
    the allocation itself is removable, which is strictly better than
    nulling the store."""
    hl = ctx.heap_liveness
    dead = ctx.interproc.dead
    program = ctx.program_ast
    covered_fields = {f for _cls, f in dead.dead_fields}
    covered_statics = {f"{cls}.{f}" for cls, f in dead.dead_statics}
    covered_lines = {(cls, sig[0]) for cls, sig in dead.array_store_sigs}
    findings = []
    for store in hl.dead_heap_stores():
        if store.token in covered_fields or store.token in covered_statics:
            continue
        if (store.class_name, store.line) in covered_lines:
            continue
        decl = program.find_class(store.class_name)
        member = (
            _member_of_line(decl, store.line) if decl is not None else store.method_name
        )
        kind = "array-element region" if store.token.endswith("[]") else "heap path"
        result.add(
            Diagnostic(
                DRAG006,
                SourceSpan(store.class_name, member, store.line),
                f"store into {kind} {store.token!r} at "
                f"{store.class_name}.{member}:{store.line} is never "
                "observably read through any live access path; the "
                f"stored {'/'.join(store.value_classes) or 'value'} is "
                "only pinned, never used",
                suggestion="rewrite the store to null (keeps all side "
                "effects and allocations, drops the pin)",
                subject=("heap-store", store.class_name, store.token, store.line),
                extra={
                    "token": store.token,
                    "value_classes": list(store.value_classes),
                    "alt_labels": list(store.pinned_labels),
                    "explain": store.explain,
                },
            )
        )
        findings.append(store)
    return findings


def _pass_drag007(ctx: AnalysisContext, result: LintResult):
    """Droppable container entries: pattern-4 pinning fields whose
    access paths all die before their container does."""
    hl = ctx.heap_liveness
    findings = []
    for entry in hl.droppable_entries():
        result.add(
            Diagnostic(
                DRAG007,
                SourceSpan(entry.class_name, entry.method_name, entry.lines[0]),
                f"{entry.var_name}.{entry.field} keeps "
                f"{entry.owner_class}.{entry.field}'s contents reachable, "
                "but every heap access path through it is dead after "
                f"line {entry.lines[0]} (last use {entry.last_use}); "
                "the container outlives its entries",
                suggestion=f"insert {entry.var_name}.{entry.field} = null; "
                f"after line {entry.lines[0]}",
                subject=(
                    "heap-field",
                    entry.owner_class,
                    entry.field,
                    entry.class_name,
                    entry.method_name,
                    entry.var_name,
                ),
                extra={
                    "insertion": {
                        "class_name": entry.class_name,
                        "method_name": entry.method_name,
                        "var_name": entry.var_name,
                        "owner_class": entry.owner_class,
                        "field_name": entry.field,
                        "lines": list(entry.lines),
                    },
                    "last_use": entry.last_use,
                    "alt_labels": list(entry.pinned_labels),
                    "explain": entry.explain,
                },
            )
        )
        findings.append(entry)
    return findings


#: DRAG008 fires only on containers retaining at least this share of
#: the reachable heap (dominator-tree retained size / total reachable).
DRAG008_MIN_SHARE = 0.02

#: At most this many retained-container diagnostics per run.
DRAG008_MAX_FINDINGS = 5


def _holder_locals(program: ast.Program, owner_class: str):
    """``(class_name, method_name, var_name, last_mention_line)`` for
    every non-library method local declared with type ``owner_class`` —
    the program points where a dominating reference can be cut."""
    out = []
    for cls in program.classes:
        if cls.is_library:
            continue
        for method in cls.methods:
            if method.body is None:
                continue
            for node in method.body.walk():
                if (
                    isinstance(node, ast.VarDecl)
                    and isinstance(node.type, ast.ClassType)
                    and node.type.name == owner_class
                ):
                    var = node.name
                    last = node.pos.line if node.pos is not None else 0
                    for use in method.body.walk():
                        if (
                            isinstance(use, ast.Name)
                            and use.ident == var
                            and use.pos is not None
                        ):
                            last = max(last, use.pos.line)
                    out.append((cls.name, method.name, var, last))
    return out


def _pass_drag008(ctx: AnalysisContext, result: LintResult):
    """High-retained containers: dominator-tree retained sizes from a
    heap snapshot, correlated with profile drag.

    Evidence-driven like DRAG007, but from *dynamic* evidence: the
    caller attaches a ``repro.snapshot.SnapshotAnalysis`` (and
    optionally a ``DragAnalysis``) to the context; without one this
    pass is silent, so static-only lint runs are unchanged. Each
    finding names the dominating reference ``owner.field`` whose cut
    releases the retained subtree and carries the same ``insertion``
    payload as DRAG007, so the assign-null-heap-field applier (and the
    RetainerCutPlanner) can act on it directly.
    """
    analysis = ctx.snapshot
    if analysis is None:
        return []
    drag = ctx.drag
    total = analysis.total_reachable_bytes
    if total <= 0:
        return []
    # Candidate cuts: (owner_class, field) -> (retained, subject node).
    # A top retainer dominated by a heap object contributes its own
    # dominating reference; one held directly by a root local (no heap
    # owner) contributes each field edge to a dominator-tree child —
    # cutting `holder.field` after the holder's last use frees that
    # child's subtree.
    candidates: Dict[tuple, tuple] = {}

    def consider(owner_class: str, field: str, subject: int) -> None:
        retained = analysis.retained[subject]
        if retained / total < DRAG008_MIN_SHARE:
            return
        key = (owner_class, field)
        if key not in candidates or candidates[key][0] < retained:
            candidates[key] = (retained, subject)

    for node_index in analysis.top_retained(limit=2 * DRAG008_MAX_FINDINGS):
        node = analysis.nodes[node_index]
        domref = analysis.dominating_reference(node_index)
        if domref is not None and domref[0] != 0:
            consider(analysis.nodes[domref[0]].type_name, domref[1], node_index)
        elif domref is not None:
            for dst, label in node.edges:
                if (
                    label is not None
                    and label != "[]"
                    and analysis.tree.idom[dst] == node_index
                ):
                    consider(node.type_name, label, dst)

    findings = []
    ranked = sorted(
        candidates.items(), key=lambda item: (-item[1][0], item[0])
    )
    for (owner_class, field), (retained, subject) in ranked:
        if len(findings) >= DRAG008_MAX_FINDINGS:
            break
        pinned = (
            analysis.pinned_drag_sites(subject, drag) if drag is not None else []
        )
        if drag is not None and not pinned:
            continue
        holders = _holder_locals(ctx.program_ast, owner_class)
        if not holders:
            continue
        class_name, method_name, var_name, last_line = holders[0]
        subject_node = analysis.nodes[subject]
        share = retained / total
        message = (
            f"{owner_class}.{field} dominates {subject_node.type_name}"
            + (f" @ {subject_node.site_label}" if subject_node.site_label else "")
            + f", retaining {retained} bytes ({100.0 * share:.1f}% of the "
            f"reachable heap)"
        )
        if pinned:
            top_site, top_drag, top_bytes = pinned[0]
            message += (
                f"; it pins dragged site {top_site} "
                f"({top_bytes} bytes retained, drag {top_drag:.0f})"
            )
        result.add(
            Diagnostic(
                DRAG008,
                SourceSpan(class_name, method_name, last_line),
                message,
                suggestion=f"insert {var_name}.{field} = null; after line "
                f"{last_line} (the holder's last use) and verify",
                subject=(
                    "retained-container",
                    owner_class,
                    field,
                    class_name,
                    method_name,
                    var_name,
                ),
                extra={
                    "insertion": {
                        "class_name": class_name,
                        "method_name": method_name,
                        "var_name": var_name,
                        "owner_class": owner_class,
                        "field_name": field,
                        "lines": [last_line],
                    },
                    "retained_bytes": retained,
                    "retained_share": share,
                    "chain": analysis.retainer_chain(subject),
                    "pinned_sites": [
                        {"site": s, "est_drag": d, "retained_bytes": b}
                        for s, d, b in pinned[:3]
                    ],
                },
            )
        )
        findings.append((owner_class, field, retained))
    return findings


#: rule id -> pass name
RULE_PASSES = {
    "DRAG001": "rule-never-used-allocation",
    "DRAG002": "rule-droppable-reference",
    "DRAG003": "rule-lazy-allocation-candidate",
    "DRAG004": "rule-unreachable-method",
    "DRAG005": "rule-oversized-array",
    "DRAG006": "rule-dead-heap-path",
    "DRAG007": "rule-droppable-container-entry",
    "DRAG008": "rule-high-retained-container",
}


def standard_pass_manager(context: AnalysisContext, telemetry=None) -> PassManager:
    """The default pipeline: shared analyses plus one pass per rule."""
    manager = PassManager(context, telemetry=telemetry)
    manager.register(Pass("callgraph", _pass_callgraph))
    manager.register(Pass("exceptions", _pass_exceptions, requires=("callgraph",)))
    manager.register(Pass("interproc-use", _pass_interproc, requires=("callgraph", "exceptions")))
    manager.register(
        Pass(RULE_PASSES["DRAG001"], _pass_drag001,
             requires=("interproc-use",), rule_id="DRAG001")
    )
    manager.register(
        Pass(RULE_PASSES["DRAG002"], _pass_drag002,
             requires=("interproc-use",), rule_id="DRAG002")
    )
    manager.register(
        Pass(RULE_PASSES["DRAG003"], _pass_drag003,
             requires=("interproc-use", "exceptions"), rule_id="DRAG003")
    )
    manager.register(
        Pass(RULE_PASSES["DRAG004"], _pass_drag004,
             requires=("callgraph",), rule_id="DRAG004")
    )
    manager.register(
        Pass(RULE_PASSES["DRAG005"], _pass_drag005,
             requires=("callgraph",), rule_id="DRAG005")
    )
    manager.register(Pass("heap-liveness", _pass_heap_liveness))
    manager.register(
        Pass(RULE_PASSES["DRAG006"], _pass_drag006,
             requires=("heap-liveness", "interproc-use"), rule_id="DRAG006")
    )
    manager.register(
        Pass(RULE_PASSES["DRAG007"], _pass_drag007,
             requires=("heap-liveness",), rule_id="DRAG007")
    )
    manager.register(
        Pass(RULE_PASSES["DRAG008"], _pass_drag008, rule_id="DRAG008")
    )
    return manager
