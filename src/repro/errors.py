"""Exception hierarchy for the repro package.

Every error raised by the toolchain derives from :class:`ReproError` so
callers can catch one type. Frontend, runtime, and analysis errors are
distinguished so tests can assert on the failing stage.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SourcePosition:
    """A (line, column) position in a mini-Java source file."""

    __slots__ = ("line", "col")

    def __init__(self, line: int, col: int) -> None:
        self.line = line
        self.col = col

    def __repr__(self) -> str:
        return f"{self.line}:{self.col}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourcePosition)
            and self.line == other.line
            and self.col == other.col
        )

    def __hash__(self) -> int:
        return hash((self.line, self.col))


class LexError(ReproError):
    """Raised when the lexer encounters an invalid character or literal."""

    def __init__(self, message: str, pos: SourcePosition) -> None:
        super().__init__(f"{pos}: {message}")
        self.pos = pos


class ParseError(ReproError):
    """Raised when the parser encounters an unexpected token."""

    def __init__(self, message: str, pos: SourcePosition) -> None:
        super().__init__(f"{pos}: {message}")
        self.pos = pos


class SemanticError(ReproError):
    """Raised for type errors, unknown names, bad modifiers, etc."""

    def __init__(self, message: str, pos: SourcePosition = None) -> None:
        if pos is not None:
            super().__init__(f"{pos}: {message}")
        else:
            super().__init__(message)
        self.pos = pos


class CompileError(ReproError):
    """Raised when bytecode generation fails."""


class VMError(ReproError):
    """Raised for internal virtual-machine errors (not mini-Java throwables)."""


class MiniJavaException(ReproError):
    """An uncaught mini-Java exception escaped to the host.

    ``class_name`` is the mini-Java class of the thrown object and
    ``message`` its message string, if any.
    """

    def __init__(self, class_name: str, message: str = "", backtrace=None) -> None:
        text = f"uncaught {class_name}" + (f": {message}" if message else "")
        super().__init__(text)
        self.class_name = class_name
        self.message_text = message
        self.backtrace = list(backtrace or [])


class OutOfMemory(VMError):
    """Internal signal that the simulated heap limit was exhausted."""


class AnalysisError(ReproError):
    """Raised when a static analysis is asked about unknown code."""


class TransformError(ReproError):
    """Raised when a source transformation is invalid or cannot be applied."""


class ProfileError(ReproError):
    """Raised for malformed profile logs or inconsistent analyzer input."""
