"""AST node definitions for mini-Java.

Every node subclasses :class:`Node` and declares its fields in
``_fields``; this powers structural equality, ``children()`` traversal and
the generic rewriter in :mod:`repro.transform.rewriter`. Nodes carry the
source position of their first token so profiles and analyses can report
line numbers.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import SourcePosition

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


class Type:
    """A source-level type: a primitive, a class name, or an array."""

    __slots__ = ()

    def is_reference(self) -> bool:
        raise NotImplementedError


class PrimitiveType(Type):
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if name not in ("int", "boolean", "char", "void"):
            raise ValueError(f"not a primitive type: {name}")
        self.name = name

    def is_reference(self) -> bool:
        return False

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimitiveType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("prim", self.name))


class ClassType(Type):
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def is_reference(self) -> bool:
        return True

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClassType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("class", self.name))


class ArrayType(Type):
    __slots__ = ("element",)

    def __init__(self, element: Type) -> None:
        self.element = element

    def is_reference(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"{self.element}[]"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ArrayType) and other.element == self.element

    def __hash__(self) -> int:
        return hash(("array", self.element))


INT = PrimitiveType("int")
BOOLEAN = PrimitiveType("boolean")
CHAR = PrimitiveType("char")
VOID = PrimitiveType("void")
STRING = ClassType("String")
OBJECT = ClassType("Object")
NULL_TYPE = ClassType("<null>")


# ---------------------------------------------------------------------------
# Node base
# ---------------------------------------------------------------------------


class Node:
    """Base AST node. Subclasses set ``_fields`` naming their children.

    Structural equality ignores source positions, so a pretty-print /
    re-parse round trip compares equal.
    """

    _fields: Tuple[str, ...] = ()
    __slots__ = ("pos",)

    def __init__(self, pos: Optional[SourcePosition] = None) -> None:
        self.pos = pos or SourcePosition(0, 0)

    def field_values(self) -> List[Tuple[str, object]]:
        return [(name, getattr(self, name)) for name in self._fields]

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (flattening lists)."""
        for _, value in self.field_values():
            if isinstance(value, Node):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, preorder."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return False
        for name in self._fields:
            if getattr(self, name) != getattr(other, name):
                return False
        return True

    def __hash__(self) -> int:
        return hash(type(self).__name__)

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}={v!r}" for n, v in self.field_values())
        return f"{type(self).__name__}({parts})"


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


class Program(Node):
    _fields = ("classes",)
    __slots__ = ("classes",)

    def __init__(self, classes: List["ClassDecl"], pos=None) -> None:
        super().__init__(pos)
        self.classes = classes

    def find_class(self, name: str) -> Optional["ClassDecl"]:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None


class Modifiers:
    """Member modifiers. ``visibility`` is one of public, protected,
    package, private."""

    __slots__ = ("visibility", "static", "final", "native")

    def __init__(
        self,
        visibility: str = "package",
        static: bool = False,
        final: bool = False,
        native: bool = False,
    ) -> None:
        if visibility not in ("public", "protected", "package", "private"):
            raise ValueError(f"bad visibility: {visibility}")
        self.visibility = visibility
        self.static = static
        self.final = final
        self.native = native

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Modifiers)
            and self.visibility == other.visibility
            and self.static == other.static
            and self.final == other.final
            and self.native == other.native
        )

    def __hash__(self) -> int:
        return hash((self.visibility, self.static, self.final, self.native))

    def __repr__(self) -> str:
        parts = [self.visibility]
        if self.static:
            parts.append("static")
        if self.final:
            parts.append("final")
        if self.native:
            parts.append("native")
        return " ".join(parts)


class ClassDecl(Node):
    _fields = ("name", "superclass", "fields", "methods", "ctors")
    __slots__ = ("name", "superclass", "fields", "methods", "ctors", "is_library")

    def __init__(
        self,
        name: str,
        superclass: Optional[str],
        fields: List["FieldDecl"],
        methods: List["MethodDecl"],
        ctors: List["CtorDecl"],
        pos=None,
        is_library: bool = False,
    ) -> None:
        super().__init__(pos)
        self.name = name
        self.superclass = superclass
        self.fields = fields
        self.methods = methods
        self.ctors = ctors
        # Library classes (our mini-JDK) are flagged so reports can
        # separate application sites from JDK sites, as the paper does.
        self.is_library = is_library


class FieldDecl(Node):
    _fields = ("mods", "type", "name", "init")
    __slots__ = ("mods", "type", "name", "init")

    def __init__(
        self,
        mods: Modifiers,
        type_: Type,
        name: str,
        init: Optional["Expr"],
        pos=None,
    ) -> None:
        super().__init__(pos)
        self.mods = mods
        self.type = type_
        self.name = name
        self.init = init


class Param(Node):
    _fields = ("type", "name")
    __slots__ = ("type", "name")

    def __init__(self, type_: Type, name: str, pos=None) -> None:
        super().__init__(pos)
        self.type = type_
        self.name = name


class MethodDecl(Node):
    _fields = ("mods", "return_type", "name", "params", "body")
    __slots__ = ("mods", "return_type", "name", "params", "body")

    def __init__(
        self,
        mods: Modifiers,
        return_type: Type,
        name: str,
        params: List[Param],
        body: Optional["Block"],
        pos=None,
    ) -> None:
        super().__init__(pos)
        self.mods = mods
        self.return_type = return_type
        self.name = name
        self.params = params
        self.body = body  # None for native methods


class CtorDecl(Node):
    _fields = ("mods", "name", "params", "body")
    __slots__ = ("mods", "name", "params", "body")

    def __init__(
        self,
        mods: Modifiers,
        name: str,
        params: List[Param],
        body: "Block",
        pos=None,
    ) -> None:
        super().__init__(pos)
        self.mods = mods
        self.name = name
        self.params = params
        self.body = body


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    __slots__ = ()


class Block(Stmt):
    _fields = ("stmts",)
    __slots__ = ("stmts",)

    def __init__(self, stmts: List[Stmt], pos=None) -> None:
        super().__init__(pos)
        self.stmts = stmts


class VarDecl(Stmt):
    _fields = ("type", "name", "init")
    __slots__ = ("type", "name", "init")

    def __init__(self, type_: Type, name: str, init: Optional["Expr"], pos=None) -> None:
        super().__init__(pos)
        self.type = type_
        self.name = name
        self.init = init


class ExprStmt(Stmt):
    _fields = ("expr",)
    __slots__ = ("expr",)

    def __init__(self, expr: "Expr", pos=None) -> None:
        super().__init__(pos)
        self.expr = expr


class Assign(Stmt):
    """``target = value;`` where target is a name, field access, or index."""

    _fields = ("target", "value")
    __slots__ = ("target", "value")

    def __init__(self, target: "Expr", value: "Expr", pos=None) -> None:
        super().__init__(pos)
        self.target = target
        self.value = value


class If(Stmt):
    _fields = ("cond", "then", "otherwise")
    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond: "Expr", then: Stmt, otherwise: Optional[Stmt], pos=None) -> None:
        super().__init__(pos)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class While(Stmt):
    _fields = ("cond", "body")
    __slots__ = ("cond", "body")

    def __init__(self, cond: "Expr", body: Stmt, pos=None) -> None:
        super().__init__(pos)
        self.cond = cond
        self.body = body


class For(Stmt):
    _fields = ("init", "cond", "update", "body")
    __slots__ = ("init", "cond", "update", "body")

    def __init__(
        self,
        init: Optional[Stmt],
        cond: Optional["Expr"],
        update: Optional[Stmt],
        body: Stmt,
        pos=None,
    ) -> None:
        super().__init__(pos)
        self.init = init
        self.cond = cond
        self.update = update
        self.body = body


class Return(Stmt):
    _fields = ("value",)
    __slots__ = ("value",)

    def __init__(self, value: Optional["Expr"], pos=None) -> None:
        super().__init__(pos)
        self.value = value


class Throw(Stmt):
    _fields = ("value",)
    __slots__ = ("value",)

    def __init__(self, value: "Expr", pos=None) -> None:
        super().__init__(pos)
        self.value = value


class Break(Stmt):
    _fields = ()
    __slots__ = ()


class Continue(Stmt):
    _fields = ()
    __slots__ = ()


class CatchClause(Node):
    _fields = ("exc_class", "var", "body")
    __slots__ = ("exc_class", "var", "body")

    def __init__(self, exc_class: str, var: str, body: Block, pos=None) -> None:
        super().__init__(pos)
        self.exc_class = exc_class
        self.var = var
        self.body = body


class Try(Stmt):
    _fields = ("body", "catches")
    __slots__ = ("body", "catches")

    def __init__(self, body: Block, catches: List[CatchClause], pos=None) -> None:
        super().__init__(pos)
        self.body = body
        self.catches = catches


class Synchronized(Stmt):
    _fields = ("monitor", "body")
    __slots__ = ("monitor", "body")

    def __init__(self, monitor: "Expr", body: Block, pos=None) -> None:
        super().__init__(pos)
        self.monitor = monitor
        self.body = body


class SuperCall(Stmt):
    """``super(args);`` — only legal as the first statement of a ctor."""

    _fields = ("args",)
    __slots__ = ("args",)

    def __init__(self, args: List["Expr"], pos=None) -> None:
        super().__init__(pos)
        self.args = args


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    __slots__ = ()


class IntLit(Expr):
    _fields = ("value",)
    __slots__ = ("value",)

    def __init__(self, value: int, pos=None) -> None:
        super().__init__(pos)
        self.value = value


class CharLit(Expr):
    _fields = ("value",)
    __slots__ = ("value",)

    def __init__(self, value: str, pos=None) -> None:
        super().__init__(pos)
        self.value = value


class BoolLit(Expr):
    _fields = ("value",)
    __slots__ = ("value",)

    def __init__(self, value: bool, pos=None) -> None:
        super().__init__(pos)
        self.value = value


class StringLit(Expr):
    _fields = ("value",)
    __slots__ = ("value",)

    def __init__(self, value: str, pos=None) -> None:
        super().__init__(pos)
        self.value = value


class NullLit(Expr):
    _fields = ()
    __slots__ = ()


class This(Expr):
    _fields = ()
    __slots__ = ()


class Name(Expr):
    """An unqualified name: local, parameter, field of ``this``, or class."""

    _fields = ("ident",)
    __slots__ = ("ident",)

    def __init__(self, ident: str, pos=None) -> None:
        super().__init__(pos)
        self.ident = ident


class FieldAccess(Expr):
    _fields = ("target", "name")
    __slots__ = ("target", "name")

    def __init__(self, target: Expr, name: str, pos=None) -> None:
        super().__init__(pos)
        self.target = target
        self.name = name


class Index(Expr):
    _fields = ("array", "index")
    __slots__ = ("array", "index")

    def __init__(self, array: Expr, index: Expr, pos=None) -> None:
        super().__init__(pos)
        self.array = array
        self.index = index


class Call(Expr):
    """``target.name(args)``. ``target`` is None for unqualified calls
    (resolved in sema to ``this`` or a static call on the current class)."""

    _fields = ("target", "name", "args")
    __slots__ = ("target", "name", "args")

    def __init__(self, target: Optional[Expr], name: str, args: List[Expr], pos=None) -> None:
        super().__init__(pos)
        self.target = target
        self.name = name
        self.args = args


class SuperMethodCall(Expr):
    _fields = ("name", "args")
    __slots__ = ("name", "args")

    def __init__(self, name: str, args: List[Expr], pos=None) -> None:
        super().__init__(pos)
        self.name = name
        self.args = args


class New(Expr):
    _fields = ("class_name", "args")
    __slots__ = ("class_name", "args")

    def __init__(self, class_name: str, args: List[Expr], pos=None) -> None:
        super().__init__(pos)
        self.class_name = class_name
        self.args = args


class NewArray(Expr):
    """``new Elem[length]`` possibly with extra empty dims: ``new T[n][]``."""

    _fields = ("element_type", "length")
    __slots__ = ("element_type", "length")

    def __init__(self, element_type: Type, length: Expr, pos=None) -> None:
        super().__init__(pos)
        self.element_type = element_type
        self.length = length


class Unary(Expr):
    _fields = ("op", "operand")
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, pos=None) -> None:
        super().__init__(pos)
        self.op = op
        self.operand = operand


class Binary(Expr):
    _fields = ("op", "left", "right")
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, pos=None) -> None:
        super().__init__(pos)
        self.op = op
        self.left = left
        self.right = right


class InstanceOf(Expr):
    _fields = ("value", "class_name")
    __slots__ = ("value", "class_name")

    def __init__(self, value: Expr, class_name: str, pos=None) -> None:
        super().__init__(pos)
        self.value = value
        self.class_name = class_name


class Cast(Expr):
    _fields = ("type", "value")
    __slots__ = ("type", "value")

    def __init__(self, type_: Type, value: Expr, pos=None) -> None:
        super().__init__(pos)
        self.type = type_
        self.value = value
