"""AST → bytecode compiler with integrated type checking.

The compiler walks the AST once per method, resolving names against the
:class:`repro.mjava.sema.ClassTable`, checking types, and emitting
:class:`repro.bytecode.instr.Instr` sequences. Every allocating
expression (``new``, ``new T[n]``, string literals, string conversion and
concatenation) is registered as an allocation *site* in the compiled
program — the unit every profiler report is keyed on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SemanticError
from repro.mjava import ast
from repro.mjava.sema import ClassInfo, ClassTable, descriptor, type_repr
from repro.bytecode.instr import Instr
from repro.bytecode.opcodes import Op
from repro.bytecode.program import (
    CompiledClass,
    CompiledMethod,
    CompiledProgram,
    ExceptionEntry,
)

_DEFAULTS = {"int": 0, "char": 0, "boolean": False, "ref": None}


def compile_program(
    program: ast.Program,
    main_class: Optional[str] = None,
    table: Optional[ClassTable] = None,
) -> CompiledProgram:
    """Compile a (library-merged) program AST to bytecode.

    ``main_class`` names the class whose ``static void main(String[])``
    is the entry point; it is validated if given.
    """
    table = table or ClassTable(program)
    compiler = _ProgramCompiler(table)
    compiled = compiler.run()
    compiled.main_class = main_class
    if main_class is not None:
        info = table.get(main_class)
        main = info.methods.get("main")
        if main is None or not main.mods.static:
            raise SemanticError(f"{main_class} has no static main method")
    return compiled


class _ProgramCompiler:
    def __init__(self, table: ClassTable) -> None:
        self.table = table
        self.out = CompiledProgram()

    def run(self) -> CompiledProgram:
        # Create all classes first so layouts can consult superclasses.
        for decl in self.table.program.classes:
            cls = CompiledClass(decl.name, decl.superclass, decl.is_library, decl.pos.line)
            self.out.classes[decl.name] = cls
        for decl in self.table.program.classes:
            self._build_layout(decl)
        for decl in self.table.program.classes:
            self._compile_class(decl)
        return self.out

    def _build_layout(self, decl: ast.ClassDecl) -> None:
        cls = self.out.classes[decl.name]
        for ancestor in reversed(self.table.superclass_chain(decl.name)):
            info = self.table.get(ancestor)
            for field in info.decl.fields:
                if field.mods.static:
                    continue
                cls.layout.names.append(field.name)
                cls.layout.descriptors[field.name] = descriptor(field.type)
                cls.layout.declaring[field.name] = ancestor
                cls.field_mods[field.name] = field.mods
        cls.layout.compute_size()
        for field in decl.fields:
            if field.mods.static:
                cls.static_fields.append(field.name)
                cls.static_descriptors[field.name] = descriptor(field.type)
                cls.static_mods[field.name] = field.mods
        self.out.clinit_order.append(decl.name)

    def _compile_class(self, decl: ast.ClassDecl) -> None:
        cls = self.out.classes[decl.name]
        info = self.table.get(decl.name)
        for method in decl.methods:
            cls.methods[method.name] = _MethodCompiler(
                self, info, method.mods, method.return_type, method.name,
                method.params, method.body, is_ctor=False, line=method.pos.line,
            ).compile()
        ctor = info.ctor
        if ctor is not None:
            cls.ctor = _MethodCompiler(
                self, info, ctor.mods, ast.VOID, "<init>", ctor.params,
                ctor.body, is_ctor=True, line=ctor.pos.line,
            ).compile()
        else:
            cls.ctor = _MethodCompiler(
                self, info, ast.Modifiers("public"), ast.VOID, "<init>", [],
                ast.Block([], pos=decl.pos), is_ctor=True, line=decl.pos.line,
            ).compile()
        static_inits = [f for f in decl.fields if f.mods.static and f.init is not None]
        if static_inits:
            cls.clinit = self._compile_clinit(info, static_inits)

    def _compile_clinit(self, info: ClassInfo, fields: List[ast.FieldDecl]) -> CompiledMethod:
        body = ast.Block(
            [
                ast.Assign(ast.Name(f.name, pos=f.pos), f.init, pos=f.pos)
                for f in fields
            ],
            pos=fields[0].pos,
        )
        return _MethodCompiler(
            self, info, ast.Modifiers("package", static=True), ast.VOID, "<clinit>",
            [], body, is_ctor=False, line=fields[0].pos.line,
        ).compile()


class _Loop:
    __slots__ = ("break_jumps", "continue_jumps")

    def __init__(self) -> None:
        self.break_jumps: List[int] = []
        self.continue_jumps: List[int] = []


class _MethodCompiler:
    def __init__(
        self,
        parent: _ProgramCompiler,
        info: ClassInfo,
        mods: ast.Modifiers,
        return_type: ast.Type,
        name: str,
        params: List[ast.Param],
        body: Optional[ast.Block],
        is_ctor: bool,
        line: int,
    ) -> None:
        self.parent = parent
        self.table = parent.table
        self.out = parent.out
        self.info = info
        self.mods = mods
        self.return_type = return_type
        self.name = name
        self.params = params
        self.body = body
        self.is_ctor = is_ctor
        self.line = line
        self.code: List[Instr] = []
        self.exception_table: List[ExceptionEntry] = []
        self.scopes: List[Dict[str, Tuple[int, ast.Type]]] = [{}]
        self.slot_names: List[str] = []
        self.slot_types: List[str] = []
        self.loops: List[_Loop] = []
        self.current_line = line
        self.is_static = mods.static

    # -- slots & scopes ------------------------------------------------------

    def new_slot(self, name: str, type_: ast.Type) -> int:
        slot = len(self.slot_names)
        self.slot_names.append(name)
        self.slot_types.append(descriptor(type_) if type_ is not None else "ref")
        return slot

    def declare(self, name: str, type_: ast.Type, pos) -> int:
        for scope in self.scopes:
            if name in scope:
                raise SemanticError(f"duplicate variable {name}", pos)
        slot = self.new_slot(name, type_)
        self.scopes[-1][name] = (slot, type_)
        return slot

    def lookup_var(self, name: str) -> Optional[Tuple[int, ast.Type]]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # -- emission ------------------------------------------------------------

    def emit(self, op: str, *args, site: Optional[int] = None) -> int:
        self.code.append(Instr(op, tuple(args), line=self.current_line, site=site))
        return len(self.code) - 1

    def here(self) -> int:
        return len(self.code)

    def patch(self, index: int, target: int) -> None:
        self.code[index].args = (target,)

    def add_site(self, kind: str, created: str) -> int:
        return self.out.add_site(
            self.info.name, self.name, self.current_line, kind, created,
            self.info.is_library,
        )

    # -- entry ---------------------------------------------------------------

    def compile(self) -> CompiledMethod:
        if self.mods.native:
            return self._native_method()
        if not self.is_static:
            self.new_slot("this", ast.ClassType(self.info.name))
        for param in self.params:
            self._check_type_exists(param.type, param.pos)
            self.declare(param.name, param.type, param.pos)
        param_descs = [descriptor(p.type) for p in self.params]
        if self.is_ctor:
            self._compile_ctor_prologue()
        assert self.body is not None
        self.compile_block(self.body)
        if self.return_type == ast.VOID:
            self.emit(Op.RET)
        else:
            self._emit_default(self.return_type)
            self.emit(Op.RETV)
        return CompiledMethod(
            class_name=self.info.name,
            name=self.name,
            param_count=len(self.params),
            nlocals=len(self.slot_names),
            code=self.code,
            exception_table=self.exception_table,
            mods=self.mods,
            is_static=self.is_static,
            is_ctor=self.is_ctor,
            is_native=False,
            return_descriptor=descriptor(self.return_type),
            slot_names=self.slot_names,
            slot_types=self.slot_types,
            line=self.line,
            param_descriptors=param_descs,
        )

    def _native_method(self) -> CompiledMethod:
        if not self.is_static:
            self.new_slot("this", ast.ClassType(self.info.name))
        for param in self.params:
            self.declare(param.name, param.type, param.pos)
        return CompiledMethod(
            class_name=self.info.name,
            name=self.name,
            param_count=len(self.params),
            nlocals=len(self.slot_names),
            code=[],
            exception_table=[],
            mods=self.mods,
            is_static=self.is_static,
            is_ctor=False,
            is_native=True,
            return_descriptor=descriptor(self.return_type),
            slot_names=self.slot_names,
            slot_types=self.slot_types,
            line=self.line,
            param_descriptors=[descriptor(p.type) for p in self.params],
        )

    def _emit_default(self, type_: ast.Type) -> None:
        if type_.is_reference():
            self.emit(Op.CONST_NULL)
        elif type_ == ast.BOOLEAN:
            self.emit(Op.CONST, False)
        else:
            self.emit(Op.CONST, 0)

    def _compile_ctor_prologue(self) -> None:
        """Run the explicit/implicit super() call, then field initializers."""
        body_stmts = self.body.stmts
        explicit_super = body_stmts and isinstance(body_stmts[0], ast.SuperCall)
        super_name = self.info.super_name
        if explicit_super:
            stmt = body_stmts[0]
            if super_name is None:
                raise SemanticError(f"{self.info.name} has no superclass", stmt.pos)
            self.current_line = stmt.pos.line
            self._compile_ctor_call(super_name, stmt.args, stmt.pos)
            # Mark it handled; compile_block skips leading SuperCall.
        elif super_name is not None:
            self._compile_ctor_call(super_name, [], self.body.pos)
        for field in self.info.decl.fields:
            if field.mods.static or field.init is None:
                continue
            self.current_line = field.pos.line
            self.emit(Op.LOAD, 0)
            value_type = self.compile_expr(field.init)
            self._check_assignable(field.type, value_type, field.pos)
            self.emit(Op.PUTFIELD, field.name)

    def _compile_ctor_call(self, class_name: str, args: List[ast.Expr], pos) -> None:
        info = self.table.get(class_name)
        ctor = info.ctor
        params = ctor.params if ctor is not None else []
        if len(args) != len(params):
            raise SemanticError(
                f"constructor {class_name} expects {len(params)} args, got {len(args)}", pos
            )
        self._check_private_ctor(info, pos)
        for arg, param in zip(args, params):
            arg_type = self.compile_expr(arg)
            self._check_assignable(param.type, arg_type, pos)
        self.emit(Op.SUPERINIT, class_name, len(args))

    # -- statements ------------------------------------------------------------

    def compile_block(self, block: ast.Block) -> None:
        self.scopes.append({})
        stmts = block.stmts
        if self.is_ctor and block is self.body and stmts and isinstance(stmts[0], ast.SuperCall):
            stmts = stmts[1:]
        for stmt in stmts:
            self.compile_stmt(stmt)
        self.scopes.pop()

    def compile_stmt(self, stmt: ast.Stmt) -> None:
        self.current_line = stmt.pos.line
        if isinstance(stmt, ast.Block):
            self.compile_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._check_type_exists(stmt.type, stmt.pos)
            slot = self.declare(stmt.name, stmt.type, stmt.pos)
            if stmt.init is not None:
                value_type = self.compile_expr(stmt.init)
                self._check_assignable(stmt.type, value_type, stmt.pos)
            else:
                self._emit_default(stmt.type)
            self.emit(Op.STORE, slot)
        elif isinstance(stmt, ast.ExprStmt):
            result = self.compile_expr(stmt.expr, statement=True)
            if result != ast.VOID:
                self.emit(Op.POP)
        elif isinstance(stmt, ast.Assign):
            self.compile_assign(stmt)
        elif isinstance(stmt, ast.If):
            self.compile_if(stmt)
        elif isinstance(stmt, ast.While):
            self.compile_while(stmt)
        elif isinstance(stmt, ast.For):
            self.compile_for(stmt)
        elif isinstance(stmt, ast.Return):
            self.compile_return(stmt)
        elif isinstance(stmt, ast.Throw):
            value_type = self.compile_expr(stmt.value)
            if not (isinstance(value_type, ast.ClassType) and self.table.is_subtype(value_type.name, "Throwable")):
                raise SemanticError("throw of a non-Throwable value", stmt.pos)
            self.emit(Op.THROW)
        elif isinstance(stmt, ast.Break):
            if not self.loops:
                raise SemanticError("break outside loop", stmt.pos)
            self.loops[-1].break_jumps.append(self.emit(Op.JUMP, -1))
        elif isinstance(stmt, ast.Continue):
            if not self.loops:
                raise SemanticError("continue outside loop", stmt.pos)
            self.loops[-1].continue_jumps.append(self.emit(Op.JUMP, -1))
        elif isinstance(stmt, ast.Try):
            self.compile_try(stmt)
        elif isinstance(stmt, ast.Synchronized):
            self.compile_synchronized(stmt)
        elif isinstance(stmt, ast.SuperCall):
            raise SemanticError("super() is only allowed as the first statement of a constructor", stmt.pos)
        else:
            raise SemanticError(f"cannot compile statement {type(stmt).__name__}", stmt.pos)

    def compile_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.Name):
            var = self.lookup_var(target.ident)
            if var is not None:
                slot, var_type = var
                value_type = self.compile_expr(stmt.value)
                self._check_assignable(var_type, value_type, stmt.pos)
                self.emit(Op.STORE, slot)
                return
            resolved = self.table.resolve_field(self.info.name, target.ident)
            if resolved is None:
                raise SemanticError(f"unknown variable {target.ident}", stmt.pos)
            declaring, field = resolved
            self._check_private_member(declaring, field.mods, target.ident, stmt.pos)
            if field.mods.static:
                value_type = self.compile_expr(stmt.value)
                self._check_assignable(field.type, value_type, stmt.pos)
                self.emit(Op.PUTSTATIC, declaring.name, target.ident)
            else:
                self._require_instance_context(stmt.pos)
                self.emit(Op.LOAD, 0)
                value_type = self.compile_expr(stmt.value)
                self._check_assignable(field.type, value_type, stmt.pos)
                self.emit(Op.PUTFIELD, target.ident)
            return
        if isinstance(target, ast.FieldAccess):
            static_class = self._as_class_name(target.target)
            if static_class is not None:
                declaring, field = self._resolve_static_field(static_class, target.name, stmt.pos)
                value_type = self.compile_expr(stmt.value)
                self._check_assignable(field.type, value_type, stmt.pos)
                self.emit(Op.PUTSTATIC, declaring.name, target.name)
                return
            obj_type = self.compile_expr(target.target)
            declaring, field = self._resolve_instance_field(obj_type, target.name, stmt.pos)
            value_type = self.compile_expr(stmt.value)
            self._check_assignable(field.type, value_type, stmt.pos)
            self.emit(Op.PUTFIELD, target.name)
            return
        if isinstance(target, ast.Index):
            array_type = self.compile_expr(target.array)
            if not isinstance(array_type, ast.ArrayType):
                raise SemanticError("indexing a non-array", stmt.pos)
            index_type = self.compile_expr(target.index)
            self._check_int(index_type, stmt.pos)
            value_type = self.compile_expr(stmt.value)
            self._check_assignable(array_type.element, value_type, stmt.pos)
            self.emit(Op.ASTORE)
            return
        raise SemanticError("invalid assignment target", stmt.pos)

    def compile_if(self, stmt: ast.If) -> None:
        cond_type = self.compile_expr(stmt.cond)
        self._check_boolean(cond_type, stmt.pos)
        jump_false = self.emit(Op.JIF, -1)
        self.compile_stmt(stmt.then)
        if stmt.otherwise is not None:
            jump_end = self.emit(Op.JUMP, -1)
            self.patch(jump_false, self.here())
            self.compile_stmt(stmt.otherwise)
            self.patch(jump_end, self.here())
        else:
            self.patch(jump_false, self.here())

    def compile_while(self, stmt: ast.While) -> None:
        top = self.here()
        cond_type = self.compile_expr(stmt.cond)
        self._check_boolean(cond_type, stmt.pos)
        exit_jump = self.emit(Op.JIF, -1)
        loop = _Loop()
        self.loops.append(loop)
        self.compile_stmt(stmt.body)
        self.loops.pop()
        for jump in loop.continue_jumps:
            self.patch(jump, top)
        self.emit(Op.JUMP, top)
        end = self.here()
        self.patch(exit_jump, end)
        for jump in loop.break_jumps:
            self.patch(jump, end)

    def compile_for(self, stmt: ast.For) -> None:
        self.scopes.append({})
        if stmt.init is not None:
            self.compile_stmt(stmt.init)
        top = self.here()
        exit_jump = None
        if stmt.cond is not None:
            cond_type = self.compile_expr(stmt.cond)
            self._check_boolean(cond_type, stmt.pos)
            exit_jump = self.emit(Op.JIF, -1)
        loop = _Loop()
        self.loops.append(loop)
        self.compile_stmt(stmt.body)
        self.loops.pop()
        update_pc = self.here()
        if stmt.update is not None:
            self.compile_stmt(stmt.update)
        self.emit(Op.JUMP, top)
        end = self.here()
        if exit_jump is not None:
            self.patch(exit_jump, end)
        for jump in loop.break_jumps:
            self.patch(jump, end)
        for jump in loop.continue_jumps:
            self.patch(jump, update_pc)
        self.scopes.pop()

    def compile_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            if self.return_type != ast.VOID:
                raise SemanticError("missing return value", stmt.pos)
            self.emit(Op.RET)
            return
        if self.return_type == ast.VOID:
            raise SemanticError("void method returns a value", stmt.pos)
        value_type = self.compile_expr(stmt.value)
        self._check_assignable(self.return_type, value_type, stmt.pos)
        self.emit(Op.RETV)

    def compile_try(self, stmt: ast.Try) -> None:
        start = self.here()
        self.compile_block(stmt.body)
        end = self.here()
        end_jumps = [self.emit(Op.JUMP, -1)]
        entries = []
        for clause in stmt.catches:
            if not self.table.is_subtype(clause.exc_class, "Throwable"):
                raise SemanticError(f"catch of non-Throwable {clause.exc_class}", clause.pos)
            handler_pc = self.here()
            self.scopes.append({})
            slot = self.declare(clause.var, ast.ClassType(clause.exc_class), clause.pos)
            entries.append(
                ExceptionEntry(start, end, handler_pc, clause.exc_class, slot, kind="catch")
            )
            self.compile_block(clause.body)
            self.scopes.pop()
            end_jumps.append(self.emit(Op.JUMP, -1))
        target = self.here()
        for jump in end_jumps:
            self.patch(jump, target)
        self.exception_table.extend(entries)

    def compile_synchronized(self, stmt: ast.Synchronized) -> None:
        monitor_type = self.compile_expr(stmt.monitor)
        if not monitor_type.is_reference():
            raise SemanticError("synchronized on a non-reference", stmt.pos)
        slot = self.new_slot(f"$mon{len(self.slot_names)}", monitor_type)
        self.emit(Op.DUP)
        self.emit(Op.STORE, slot)
        self.emit(Op.MONENTER)
        start = self.here()
        self.compile_block(stmt.body)
        end = self.here()
        self.emit(Op.LOAD, slot)
        self.emit(Op.MONEXIT)
        self.exception_table.append(
            ExceptionEntry(start, end, kind="monitor", monitor_slot=slot)
        )

    # -- expressions -------------------------------------------------------------

    def compile_expr(self, expr: ast.Expr, statement: bool = False) -> ast.Type:
        """Emit code leaving the expression's value on the stack; return
        its static type. With ``statement=True``, only calls and ``new``
        are allowed (expression statements)."""
        self.current_line = expr.pos.line or self.current_line
        if statement and not isinstance(expr, (ast.Call, ast.New, ast.SuperMethodCall)):
            raise SemanticError("not a statement expression", expr.pos)
        if isinstance(expr, ast.IntLit):
            self.emit(Op.CONST, expr.value)
            return ast.INT
        if isinstance(expr, ast.CharLit):
            self.emit(Op.CONST, ord(expr.value))
            return ast.CHAR
        if isinstance(expr, ast.BoolLit):
            self.emit(Op.CONST, expr.value)
            return ast.BOOLEAN
        if isinstance(expr, ast.StringLit):
            site = self.add_site("string", "String")
            self.emit(Op.CONST_STRING, expr.value, site=site)
            return ast.STRING
        if isinstance(expr, ast.NullLit):
            self.emit(Op.CONST_NULL)
            return ast.NULL_TYPE
        if isinstance(expr, ast.This):
            self._require_instance_context(expr.pos)
            self.emit(Op.LOAD, 0)
            return ast.ClassType(self.info.name)
        if isinstance(expr, ast.Name):
            return self.compile_name(expr)
        if isinstance(expr, ast.FieldAccess):
            return self.compile_field_access(expr)
        if isinstance(expr, ast.Index):
            return self.compile_index(expr)
        if isinstance(expr, ast.Call):
            return self.compile_call(expr)
        if isinstance(expr, ast.SuperMethodCall):
            return self.compile_super_call(expr)
        if isinstance(expr, ast.New):
            return self.compile_new(expr)
        if isinstance(expr, ast.NewArray):
            return self.compile_new_array(expr)
        if isinstance(expr, ast.Unary):
            return self.compile_unary(expr)
        if isinstance(expr, ast.Binary):
            return self.compile_binary(expr)
        if isinstance(expr, ast.InstanceOf):
            value_type = self.compile_expr(expr.value)
            if not value_type.is_reference():
                raise SemanticError("instanceof on a non-reference", expr.pos)
            self.table.get(expr.class_name)
            self.emit(Op.INSTANCEOF, expr.class_name)
            return ast.BOOLEAN
        if isinstance(expr, ast.Cast):
            return self.compile_cast(expr)
        raise SemanticError(f"cannot compile expression {type(expr).__name__}", expr.pos)

    def compile_name(self, expr: ast.Name) -> ast.Type:
        var = self.lookup_var(expr.ident)
        if var is not None:
            slot, var_type = var
            self.emit(Op.LOAD, slot)
            return var_type
        resolved = self.table.resolve_field(self.info.name, expr.ident)
        if resolved is not None:
            declaring, field = resolved
            self._check_private_member(declaring, field.mods, expr.ident, expr.pos)
            if field.mods.static:
                self.emit(Op.GETSTATIC, declaring.name, expr.ident)
            else:
                self._require_instance_context(expr.pos)
                self.emit(Op.LOAD, 0)
                self.emit(Op.GETFIELD, expr.ident)
            return field.type
        raise SemanticError(f"unknown name {expr.ident}", expr.pos)

    def _as_class_name(self, expr: ast.Expr) -> Optional[str]:
        """If ``expr`` is a bare Name denoting a class (and not a
        variable/field), return the class name."""
        if not isinstance(expr, ast.Name):
            return None
        if self.lookup_var(expr.ident) is not None:
            return None
        if self.table.resolve_field(self.info.name, expr.ident) is not None:
            return None
        if self.table.has(expr.ident):
            return expr.ident
        return None

    def compile_field_access(self, expr: ast.FieldAccess) -> ast.Type:
        static_class = self._as_class_name(expr.target)
        if static_class is not None:
            declaring, field = self._resolve_static_field(static_class, expr.name, expr.pos)
            self.emit(Op.GETSTATIC, declaring.name, expr.name)
            return field.type
        target_type = self.compile_expr(expr.target)
        if isinstance(target_type, ast.ArrayType):
            if expr.name != "length":
                raise SemanticError(f"arrays have no field {expr.name}", expr.pos)
            self.emit(Op.ARRAYLEN)
            return ast.INT
        declaring, field = self._resolve_instance_field(target_type, expr.name, expr.pos)
        self.emit(Op.GETFIELD, expr.name)
        return field.type

    def compile_index(self, expr: ast.Index) -> ast.Type:
        array_type = self.compile_expr(expr.array)
        if not isinstance(array_type, ast.ArrayType):
            raise SemanticError("indexing a non-array", expr.pos)
        index_type = self.compile_expr(expr.index)
        self._check_int(index_type, expr.pos)
        self.emit(Op.ALOAD)
        return array_type.element

    def compile_call(self, expr: ast.Call) -> ast.Type:
        if expr.target is None:
            resolved = self.table.resolve_method(self.info.name, expr.name)
            if resolved is None:
                raise SemanticError(f"unknown method {expr.name}", expr.pos)
            declaring, method = resolved
            self._check_private_member(declaring, method.mods, expr.name, expr.pos)
            if method.mods.static:
                self._compile_args(method.params, expr.args, expr.pos)
                self.emit(Op.INVOKESTATIC, declaring.name, expr.name, len(expr.args))
            else:
                self._require_instance_context(expr.pos)
                self.emit(Op.LOAD, 0)
                self._compile_args(method.params, expr.args, expr.pos)
                self.emit(Op.INVOKEV, expr.name, len(expr.args))
            return method.return_type
        static_class = self._as_class_name(expr.target)
        if static_class is not None:
            resolved = self.table.resolve_method(static_class, expr.name)
            if resolved is None:
                raise SemanticError(f"unknown method {static_class}.{expr.name}", expr.pos)
            declaring, method = resolved
            if not method.mods.static:
                raise SemanticError(f"{static_class}.{expr.name} is not static", expr.pos)
            self._check_private_member(declaring, method.mods, expr.name, expr.pos)
            self._compile_args(method.params, expr.args, expr.pos)
            self.emit(Op.INVOKESTATIC, declaring.name, expr.name, len(expr.args))
            return method.return_type
        target_type = self.compile_expr(expr.target)
        if not isinstance(target_type, ast.ClassType) or target_type == ast.NULL_TYPE:
            raise SemanticError("method call on a non-object", expr.pos)
        resolved = self.table.resolve_method(target_type.name, expr.name)
        if resolved is None:
            raise SemanticError(f"unknown method {target_type.name}.{expr.name}", expr.pos)
        declaring, method = resolved
        if method.mods.static:
            raise SemanticError(f"static method {expr.name} called on instance", expr.pos)
        self._check_private_member(declaring, method.mods, expr.name, expr.pos)
        self._compile_args(method.params, expr.args, expr.pos)
        self.emit(Op.INVOKEV, expr.name, len(expr.args))
        return method.return_type

    def compile_super_call(self, expr: ast.SuperMethodCall) -> ast.Type:
        self._require_instance_context(expr.pos)
        if self.info.super_name is None:
            raise SemanticError(f"{self.info.name} has no superclass", expr.pos)
        resolved = self.table.resolve_method(self.info.super_name, expr.name)
        if resolved is None:
            raise SemanticError(f"unknown method super.{expr.name}", expr.pos)
        declaring, method = resolved
        self.emit(Op.LOAD, 0)
        self._compile_args(method.params, expr.args, expr.pos)
        self.emit(Op.INVOKESUPER, self.info.super_name, expr.name, len(expr.args))
        return method.return_type

    def _compile_args(self, params: List[ast.Param], args: List[ast.Expr], pos) -> None:
        if len(params) != len(args):
            raise SemanticError(f"expected {len(params)} arguments, got {len(args)}", pos)
        for param, arg in zip(params, args):
            arg_type = self.compile_expr(arg)
            self._check_assignable(param.type, arg_type, pos)

    def compile_new(self, expr: ast.New) -> ast.Type:
        info = self.table.get(expr.class_name)
        ctor = info.ctor
        params = ctor.params if ctor is not None else []
        if len(expr.args) != len(params):
            raise SemanticError(
                f"constructor {expr.class_name} expects {len(params)} args, got {len(expr.args)}",
                expr.pos,
            )
        self._check_private_ctor(info, expr.pos)
        for param, arg in zip(params, expr.args):
            arg_type = self.compile_expr(arg)
            self._check_assignable(param.type, arg_type, expr.pos)
        site = self.add_site("new", expr.class_name)
        self.emit(Op.NEWINIT, expr.class_name, len(expr.args), site=site)
        return ast.ClassType(expr.class_name)

    def compile_new_array(self, expr: ast.NewArray) -> ast.Type:
        self._check_type_exists(expr.element_type, expr.pos)
        length_type = self.compile_expr(expr.length)
        self._check_int(length_type, expr.pos)
        elem_desc = descriptor(expr.element_type)
        elem_repr = type_repr(expr.element_type)
        site = self.add_site("newarray", elem_repr + "[]")
        self.emit(Op.NEWARRAY, elem_desc, elem_repr, site=site)
        return ast.ArrayType(expr.element_type)

    def compile_unary(self, expr: ast.Unary) -> ast.Type:
        operand_type = self.compile_expr(expr.operand)
        if expr.op == "-":
            self._check_int(operand_type, expr.pos)
            self.emit(Op.NEG)
            return ast.INT
        self._check_boolean(operand_type, expr.pos)
        self.emit(Op.NOT)
        return ast.BOOLEAN

    _CMP_OPS = {"<": Op.LT, "<=": Op.LE, ">": Op.GT, ">=": Op.GE}
    _ARITH_OPS = {"+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV, "%": Op.MOD}

    def compile_binary(self, expr: ast.Binary) -> ast.Type:
        op = expr.op
        if op in ("&&", "||"):
            return self._compile_short_circuit(expr)
        if op == "+" and self._is_string_concat(expr):
            return self._compile_concat(expr)
        if op in self._ARITH_OPS:
            left = self.compile_expr(expr.left)
            self._check_int(left, expr.pos)
            right = self.compile_expr(expr.right)
            self._check_int(right, expr.pos)
            self.emit(self._ARITH_OPS[op])
            return ast.INT
        if op in self._CMP_OPS:
            left = self.compile_expr(expr.left)
            self._check_int(left, expr.pos)
            right = self.compile_expr(expr.right)
            self._check_int(right, expr.pos)
            self.emit(self._CMP_OPS[op])
            return ast.BOOLEAN
        if op in ("==", "!="):
            left = self.compile_expr(expr.left)
            right = self.compile_expr(expr.right)
            if left.is_reference() and right.is_reference():
                self.emit(Op.REFEQ if op == "==" else Op.REFNE)
            elif left.is_reference() or right.is_reference():
                raise SemanticError("comparing reference with primitive", expr.pos)
            elif (left == ast.BOOLEAN) != (right == ast.BOOLEAN):
                raise SemanticError("comparing boolean with number", expr.pos)
            else:
                self.emit(Op.EQ if op == "==" else Op.NE)
            return ast.BOOLEAN
        raise SemanticError(f"unknown operator {op}", expr.pos)

    def _static_type_quick(self, expr: ast.Expr) -> Optional[ast.Type]:
        """Best-effort static type without emitting code (for the string-+
        decision). Returns None when it would require full compilation."""
        if isinstance(expr, ast.StringLit):
            return ast.STRING
        if isinstance(expr, ast.IntLit):
            return ast.INT
        if isinstance(expr, ast.CharLit):
            return ast.CHAR
        if isinstance(expr, ast.BoolLit):
            return ast.BOOLEAN
        if isinstance(expr, ast.Binary) and expr.op == "+":
            left = self._static_type_quick(expr.left)
            right = self._static_type_quick(expr.right)
            if left == ast.STRING or right == ast.STRING:
                return ast.STRING
            return left
        if isinstance(expr, ast.Name):
            var = self.lookup_var(expr.ident)
            if var is not None:
                return var[1]
            resolved = self.table.resolve_field(self.info.name, expr.ident)
            if resolved is not None:
                return resolved[1].type
        if isinstance(expr, ast.Call) and expr.target is None:
            resolved = self.table.resolve_method(self.info.name, expr.name)
            if resolved is not None:
                return resolved[1].return_type
        return None

    def _is_string_concat(self, expr: ast.Binary) -> bool:
        left = self._static_type_quick(expr.left)
        right = self._static_type_quick(expr.right)
        if left == ast.STRING or right == ast.STRING:
            return True
        if left is not None and right is not None:
            return False
        # Fall back to a trial compilation of the left operand.
        mark_code = len(self.code)
        mark_sites = len(self.out.sites)
        mark_slots = len(self.slot_names)
        try:
            left_type = self.compile_expr(expr.left)
        except SemanticError:
            del self.code[mark_code:]
            del self.out.sites[mark_sites:]
            del self.slot_names[mark_slots:]
            del self.slot_types[mark_slots:]
            return False
        is_string = left_type == ast.STRING
        if not is_string:
            mark2 = len(self.code)
            try:
                right_type = self.compile_expr(expr.right)
                is_string = right_type == ast.STRING
            except SemanticError:
                is_string = False
            del self.code[mark2:]
        del self.code[mark_code:]
        del self.out.sites[mark_sites:]
        del self.slot_names[mark_slots:]
        del self.slot_types[mark_slots:]
        return is_string

    def _compile_concat(self, expr: ast.Binary) -> ast.Type:
        self._compile_to_string(expr.left)
        self._compile_to_string(expr.right)
        site = self.add_site("concat", "String")
        self.emit(Op.CONCAT, site=site)
        return ast.STRING

    def _compile_to_string(self, expr: ast.Expr) -> None:
        value_type = self.compile_expr(expr)
        if value_type == ast.STRING:
            return
        if value_type == ast.CHAR:
            mode = "char"
        elif value_type == ast.INT:
            mode = "int"
        elif value_type == ast.BOOLEAN:
            mode = "bool"
        elif value_type.is_reference():
            mode = "ref"
        else:
            raise SemanticError("cannot convert to String", expr.pos)
        site = self.add_site("tostr", "String")
        self.emit(Op.TOSTR, mode, site=site)

    def _compile_short_circuit(self, expr: ast.Binary) -> ast.Type:
        left = self.compile_expr(expr.left)
        self._check_boolean(left, expr.pos)
        if expr.op == "&&":
            skip = self.emit(Op.JIF, -1)
            right = self.compile_expr(expr.right)
            self._check_boolean(right, expr.pos)
            done = self.emit(Op.JUMP, -1)
            self.patch(skip, self.here())
            self.emit(Op.CONST, False)
            self.patch(done, self.here())
        else:
            skip = self.emit(Op.JIT, -1)
            right = self.compile_expr(expr.right)
            self._check_boolean(right, expr.pos)
            done = self.emit(Op.JUMP, -1)
            self.patch(skip, self.here())
            self.emit(Op.CONST, True)
            self.patch(done, self.here())
        return ast.BOOLEAN

    def compile_cast(self, expr: ast.Cast) -> ast.Type:
        value_type = self.compile_expr(expr.value)
        target = expr.type
        if isinstance(target, ast.PrimitiveType):
            if target == ast.CHAR and value_type in (ast.INT, ast.CHAR):
                self.emit(Op.CAST_CHAR)
                return ast.CHAR
            if target == ast.INT and value_type in (ast.INT, ast.CHAR):
                return ast.INT
            raise SemanticError(f"invalid primitive cast to {target}", expr.pos)
        if not value_type.is_reference():
            raise SemanticError("cannot cast a primitive to a reference type", expr.pos)
        self._check_type_exists(target, expr.pos)
        self.emit(Op.CHECKCAST, type_repr(target))
        return target

    # -- checks -------------------------------------------------------------------

    def _check_type_exists(self, type_: ast.Type, pos) -> None:
        base = type_
        while isinstance(base, ast.ArrayType):
            base = base.element
        if isinstance(base, ast.ClassType):
            self.table.get(base.name)

    def _check_assignable(self, target: ast.Type, value: ast.Type, pos) -> None:
        if not self.table.assignable(target, value):
            raise SemanticError(f"cannot assign {value} to {target}", pos)

    def _check_int(self, type_: ast.Type, pos) -> None:
        if type_ not in (ast.INT, ast.CHAR):
            raise SemanticError(f"expected int, found {type_}", pos)

    def _check_boolean(self, type_: ast.Type, pos) -> None:
        if type_ != ast.BOOLEAN:
            raise SemanticError(f"expected boolean, found {type_}", pos)

    def _require_instance_context(self, pos) -> None:
        if self.is_static:
            raise SemanticError("no 'this' in a static context", pos)

    def _check_private_member(self, declaring: ClassInfo, mods: ast.Modifiers, name: str, pos) -> None:
        if mods.visibility == "private" and declaring.name != self.info.name:
            raise SemanticError(f"{declaring.name}.{name} is private", pos)

    def _check_private_ctor(self, info: ClassInfo, pos) -> None:
        ctor = info.ctor
        if ctor is not None and ctor.mods.visibility == "private" and info.name != self.info.name:
            raise SemanticError(f"constructor of {info.name} is private", pos)

    def _resolve_static_field(self, class_name: str, field_name: str, pos):
        resolved = self.table.resolve_field(class_name, field_name)
        if resolved is None:
            raise SemanticError(f"unknown field {class_name}.{field_name}", pos)
        declaring, field = resolved
        if not field.mods.static:
            raise SemanticError(f"{class_name}.{field_name} is not static", pos)
        self._check_private_member(declaring, field.mods, field_name, pos)
        return declaring, field

    def _resolve_instance_field(self, target_type: ast.Type, field_name: str, pos):
        if not isinstance(target_type, ast.ClassType) or target_type == ast.NULL_TYPE:
            raise SemanticError("field access on a non-object", pos)
        resolved = self.table.resolve_field(target_type.name, field_name)
        if resolved is None:
            raise SemanticError(f"unknown field {target_type.name}.{field_name}", pos)
        declaring, field = resolved
        if field.mods.static:
            raise SemanticError(f"{target_type.name}.{field_name} is static", pos)
        self._check_private_member(declaring, field.mods, field_name, pos)
        return declaring, field
