"""Recursive-descent parser for mini-Java.

Grammar summary (see tests/mjava/test_parser.py for worked examples)::

    program   := classdecl*
    classdecl := mods 'class' ID ('extends' ID)? '{' member* '}'
    member    := field | method | ctor
    field     := mods type ID ('=' expr)? ';'
    method    := mods (type | 'void') ID '(' params ')' (block | ';')
    ctor      := mods ClassName '(' params ')' block
    stmt      := block | if | while | for | return | throw | break
               | continue | try | synchronized | super-call | vardecl
               | assignment | expression-statement
    expr      := precedence-climbing over || && == != < <= > >= instanceof
                 + - * / % with unary ! - and casts

Casts use a one-token lookahead heuristic: ``(T) x`` is a cast when ``T``
is a primitive type, or when ``T`` is an identifier (optionally with
``[]``) and the token after the ``)`` can start a unary expression.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.mjava import ast
from repro.mjava.lexer import tokenize
from repro.mjava.tokens import (
    CHAR_LIT,
    EOF,
    IDENT,
    INT_LIT,
    PRIMITIVE_TYPES,
    STRING_LIT,
    Token,
)

_MODIFIER_KEYWORDS = ("public", "private", "protected", "static", "final", "native")

# Tokens that can begin a unary expression, used by the cast heuristic.
_UNARY_START = frozenset(
    [IDENT, INT_LIT, CHAR_LIT, STRING_LIT, "(", "new", "this", "null", "true", "false", "!", "-", "super"]
)


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token helpers ----------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        i = min(self.index + ahead, len(self.tokens) - 1)
        return self.tokens[i]

    def at(self, kind: str, ahead: int = 0) -> bool:
        return self.peek(ahead).kind == kind

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != EOF:
            self.index += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(f"expected {kind!r}, found {token.kind!r}", token.pos)
        return self.advance()

    def accept(self, kind: str) -> Optional[Token]:
        if self.at(kind):
            return self.advance()
        return None

    # -- program / declarations -------------------------------------------

    def parse_program(self) -> ast.Program:
        start = self.peek().pos
        classes = []
        while not self.at(EOF):
            classes.append(self.parse_class())
        return ast.Program(classes, pos=start)

    def parse_modifiers(self) -> ast.Modifiers:
        visibility = "package"
        static = final = native = False
        seen_visibility = False
        while self.peek().kind in _MODIFIER_KEYWORDS:
            token = self.advance()
            if token.kind in ("public", "private", "protected"):
                if seen_visibility:
                    raise ParseError("duplicate visibility modifier", token.pos)
                seen_visibility = True
                visibility = token.kind
            elif token.kind == "static":
                static = True
            elif token.kind == "final":
                final = True
            else:
                native = True
        return ast.Modifiers(visibility, static, final, native)

    def parse_class(self) -> ast.ClassDecl:
        self.parse_modifiers()  # class-level modifiers accepted, ignored
        start = self.expect("class").pos
        name = self.expect(IDENT).value
        superclass = None
        if self.accept("extends"):
            superclass = self.expect(IDENT).value
        self.expect("{")
        fields: List[ast.FieldDecl] = []
        methods: List[ast.MethodDecl] = []
        ctors: List[ast.CtorDecl] = []
        while not self.accept("}"):
            member = self.parse_member(name)
            if isinstance(member, ast.FieldDecl):
                fields.append(member)
            elif isinstance(member, ast.MethodDecl):
                methods.append(member)
            else:
                ctors.append(member)
        return ast.ClassDecl(name, superclass, fields, methods, ctors, pos=start)

    def parse_member(self, class_name: str):
        start = self.peek().pos
        mods = self.parse_modifiers()
        # Constructor: ClassName '('
        if self.at(IDENT) and self.peek().value == class_name and self.at("(", 1):
            self.advance()
            params = self.parse_params()
            body = self.parse_block()
            return ast.CtorDecl(mods, class_name, params, body, pos=start)
        if self.accept("void"):
            return_type: ast.Type = ast.VOID
        else:
            return_type = self.parse_type()
        name = self.expect(IDENT).value
        if self.at("("):
            params = self.parse_params()
            if mods.native:
                self.expect(";")
                body = None
            else:
                body = self.parse_block()
            return ast.MethodDecl(mods, return_type, name, params, body, pos=start)
        init = None
        if self.accept("="):
            init = self.parse_expr()
        self.expect(";")
        return ast.FieldDecl(mods, return_type, name, init, pos=start)

    def parse_params(self) -> List[ast.Param]:
        self.expect("(")
        params: List[ast.Param] = []
        if not self.at(")"):
            while True:
                pos = self.peek().pos
                type_ = self.parse_type()
                name = self.expect(IDENT).value
                params.append(ast.Param(type_, name, pos=pos))
                if not self.accept(","):
                    break
        self.expect(")")
        return params

    def parse_type(self) -> ast.Type:
        token = self.peek()
        if token.kind in PRIMITIVE_TYPES:
            self.advance()
            type_: ast.Type = ast.PrimitiveType(token.kind)
        elif token.kind == IDENT:
            self.advance()
            type_ = ast.ClassType(token.value)
        else:
            raise ParseError(f"expected a type, found {token.kind!r}", token.pos)
        while self.at("[") and self.at("]", 1):
            self.advance()
            self.advance()
            type_ = ast.ArrayType(type_)
        return type_

    # -- statements --------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self.expect("{").pos
        stmts: List[ast.Stmt] = []
        while not self.accept("}"):
            stmts.append(self.parse_stmt())
        return ast.Block(stmts, pos=start)

    def _looks_like_vardecl(self) -> bool:
        if self.peek().kind in PRIMITIVE_TYPES:
            return True
        if not self.at(IDENT):
            return False
        # "Foo x" or "Foo[] x" or "Foo[][] x"
        ahead = 1
        while self.at("[", ahead) and self.at("]", ahead + 1):
            ahead += 2
        return self.at(IDENT, ahead)

    def parse_stmt(self) -> ast.Stmt:
        token = self.peek()
        if token.kind == "{":
            return self.parse_block()
        if token.kind == "if":
            return self.parse_if()
        if token.kind == "while":
            return self.parse_while()
        if token.kind == "for":
            return self.parse_for()
        if token.kind == "return":
            self.advance()
            value = None if self.at(";") else self.parse_expr()
            self.expect(";")
            return ast.Return(value, pos=token.pos)
        if token.kind == "throw":
            self.advance()
            value = self.parse_expr()
            self.expect(";")
            return ast.Throw(value, pos=token.pos)
        if token.kind == "break":
            self.advance()
            self.expect(";")
            return ast.Break(pos=token.pos)
        if token.kind == "continue":
            self.advance()
            self.expect(";")
            return ast.Continue(pos=token.pos)
        if token.kind == "try":
            return self.parse_try()
        if token.kind == "synchronized":
            self.advance()
            self.expect("(")
            monitor = self.parse_expr()
            self.expect(")")
            body = self.parse_block()
            return ast.Synchronized(monitor, body, pos=token.pos)
        if token.kind == "super" and self.at("(", 1):
            self.advance()
            args = self.parse_args()
            self.expect(";")
            return ast.SuperCall(args, pos=token.pos)
        if self._looks_like_vardecl():
            return self.parse_vardecl()
        return self.parse_assign_or_expr_stmt()

    def parse_vardecl(self) -> ast.VarDecl:
        start = self.peek().pos
        type_ = self.parse_type()
        name = self.expect(IDENT).value
        init = None
        if self.accept("="):
            init = self.parse_expr()
        self.expect(";")
        return ast.VarDecl(type_, name, init, pos=start)

    def parse_assign_or_expr_stmt(self) -> ast.Stmt:
        start = self.peek().pos
        expr = self.parse_expr()
        if self.accept("="):
            value = self.parse_expr()
            self.expect(";")
            if not isinstance(expr, (ast.Name, ast.FieldAccess, ast.Index)):
                raise ParseError("invalid assignment target", start)
            return ast.Assign(expr, value, pos=start)
        self.expect(";")
        return ast.ExprStmt(expr, pos=start)

    def parse_if(self) -> ast.If:
        start = self.expect("if").pos
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self.parse_stmt()
        otherwise = None
        if self.accept("else"):
            otherwise = self.parse_stmt()
        return ast.If(cond, then, otherwise, pos=start)

    def parse_while(self) -> ast.While:
        start = self.expect("while").pos
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        body = self.parse_stmt()
        return ast.While(cond, body, pos=start)

    def parse_for(self) -> ast.For:
        start = self.expect("for").pos
        self.expect("(")
        init: Optional[ast.Stmt] = None
        if not self.at(";"):
            if self._looks_like_vardecl():
                init = self.parse_vardecl()  # consumes the ';'
            else:
                init = self._parse_for_assign()
                self.expect(";")
        else:
            self.expect(";")
        cond = None if self.at(";") else self.parse_expr()
        self.expect(";")
        update: Optional[ast.Stmt] = None
        if not self.at(")"):
            update = self._parse_for_assign()
        self.expect(")")
        body = self.parse_stmt()
        return ast.For(init, cond, update, body, pos=start)

    def _parse_for_assign(self) -> ast.Stmt:
        start = self.peek().pos
        expr = self.parse_expr()
        if self.accept("="):
            value = self.parse_expr()
            if not isinstance(expr, (ast.Name, ast.FieldAccess, ast.Index)):
                raise ParseError("invalid assignment target", start)
            return ast.Assign(expr, value, pos=start)
        return ast.ExprStmt(expr, pos=start)

    def parse_try(self) -> ast.Try:
        start = self.expect("try").pos
        body = self.parse_block()
        catches: List[ast.CatchClause] = []
        while self.at("catch"):
            cpos = self.advance().pos
            self.expect("(")
            exc_class = self.expect(IDENT).value
            var = self.expect(IDENT).value
            self.expect(")")
            cbody = self.parse_block()
            catches.append(ast.CatchClause(exc_class, var, cbody, pos=cpos))
        if not catches:
            raise ParseError("try without catch", start)
        return ast.Try(body, catches, pos=start)

    # -- expressions --------------------------------------------------------

    def parse_args(self) -> List[ast.Expr]:
        self.expect("(")
        args: List[ast.Expr] = []
        if not self.at(")"):
            while True:
                args.append(self.parse_expr())
                if not self.accept(","):
                    break
        self.expect(")")
        return args

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.at("||"):
            pos = self.advance().pos
            right = self.parse_and()
            left = ast.Binary("||", left, right, pos=pos)
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_equality()
        while self.at("&&"):
            pos = self.advance().pos
            right = self.parse_equality()
            left = ast.Binary("&&", left, right, pos=pos)
        return left

    def parse_equality(self) -> ast.Expr:
        left = self.parse_relational()
        while self.peek().kind in ("==", "!="):
            op = self.advance()
            right = self.parse_relational()
            left = ast.Binary(op.kind, left, right, pos=op.pos)
        return left

    def parse_relational(self) -> ast.Expr:
        left = self.parse_additive()
        while True:
            kind = self.peek().kind
            if kind in ("<", "<=", ">", ">="):
                op = self.advance()
                right = self.parse_additive()
                left = ast.Binary(op.kind, left, right, pos=op.pos)
            elif kind == "instanceof":
                pos = self.advance().pos
                cls = self.expect(IDENT).value
                left = ast.InstanceOf(left, cls, pos=pos)
            else:
                return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while self.peek().kind in ("+", "-"):
            op = self.advance()
            right = self.parse_multiplicative()
            left = ast.Binary(op.kind, left, right, pos=op.pos)
        return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while self.peek().kind in ("*", "/", "%"):
            op = self.advance()
            right = self.parse_unary()
            left = ast.Binary(op.kind, left, right, pos=op.pos)
        return left

    def _cast_lookahead(self) -> Optional[ast.Type]:
        """If the upcoming tokens form ``( Type )`` beginning a cast,
        return the Type without consuming anything; otherwise None."""
        if not self.at("("):
            return None
        ahead = 1
        token = self.peek(ahead)
        if token.kind in PRIMITIVE_TYPES:
            type_: ast.Type = ast.PrimitiveType(token.kind)
        elif token.kind == IDENT:
            type_ = ast.ClassType(token.value)
        else:
            return None
        ahead += 1
        while self.at("[", ahead) and self.at("]", ahead + 1):
            type_ = ast.ArrayType(type_)
            ahead += 2
        if not self.at(")", ahead):
            return None
        nxt = self.peek(ahead + 1)
        if isinstance(type_, ast.PrimitiveType):
            pass  # "(int) x" is unambiguous
        elif nxt.kind not in _UNARY_START or nxt.kind in ("-", "!"):
            # "(name) - x" parses as subtraction, not a cast.
            return None
        return type_

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind in ("!", "-"):
            self.advance()
            operand = self.parse_unary()
            if token.kind == "-" and isinstance(operand, ast.IntLit):
                return ast.IntLit(-operand.value, pos=token.pos)
            return ast.Unary(token.kind, operand, pos=token.pos)
        cast_type = self._cast_lookahead()
        if cast_type is not None:
            pos = self.expect("(").pos
            self.parse_type()
            self.expect(")")
            value = self.parse_unary()
            return ast.Cast(cast_type, value, pos=pos)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.at("."):
                pos = self.advance().pos
                name = self.expect(IDENT).value
                if self.at("("):
                    args = self.parse_args()
                    expr = ast.Call(expr, name, args, pos=pos)
                else:
                    expr = ast.FieldAccess(expr, name, pos=pos)
            elif self.at("[") and not self.at("]", 1):
                pos = self.advance().pos
                index = self.parse_expr()
                self.expect("]")
                expr = ast.Index(expr, index, pos=pos)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == INT_LIT:
            self.advance()
            return ast.IntLit(token.value, pos=token.pos)
        if token.kind == CHAR_LIT:
            self.advance()
            return ast.CharLit(token.value, pos=token.pos)
        if token.kind == STRING_LIT:
            self.advance()
            return ast.StringLit(token.value, pos=token.pos)
        if token.kind == "true":
            self.advance()
            return ast.BoolLit(True, pos=token.pos)
        if token.kind == "false":
            self.advance()
            return ast.BoolLit(False, pos=token.pos)
        if token.kind == "null":
            self.advance()
            return ast.NullLit(pos=token.pos)
        if token.kind == "this":
            self.advance()
            return ast.This(pos=token.pos)
        if token.kind == "super":
            self.advance()
            self.expect(".")
            name = self.expect(IDENT).value
            args = self.parse_args()
            return ast.SuperMethodCall(name, args, pos=token.pos)
        if token.kind == "new":
            return self.parse_new()
        if token.kind == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if token.kind == IDENT:
            self.advance()
            if self.at("("):
                args = self.parse_args()
                return ast.Call(None, token.value, args, pos=token.pos)
            return ast.Name(token.value, pos=token.pos)
        raise ParseError(f"unexpected token {token.kind!r}", token.pos)

    def parse_new(self) -> ast.Expr:
        start = self.expect("new").pos
        token = self.peek()
        if token.kind in PRIMITIVE_TYPES:
            self.advance()
            base: ast.Type = ast.PrimitiveType(token.kind)
        elif token.kind == IDENT:
            self.advance()
            base = ast.ClassType(token.value)
        else:
            raise ParseError("expected type after 'new'", token.pos)
        if self.at("("):
            if not isinstance(base, ast.ClassType):
                raise ParseError("cannot construct a primitive", start)
            args = self.parse_args()
            return ast.New(base.name, args, pos=start)
        self.expect("[")
        length = self.parse_expr()
        self.expect("]")
        elem = base
        while self.at("[") and self.at("]", 1):
            self.advance()
            self.advance()
            elem = ast.ArrayType(elem)
        return ast.NewArray(elem, length, pos=start)


def parse_program(source: str) -> ast.Program:
    """Parse mini-Java source text into a :class:`repro.mjava.ast.Program`."""
    return Parser(tokenize(source)).parse_program()
