"""Token kinds and the Token class for the mini-Java lexer."""

from __future__ import annotations

from repro.errors import SourcePosition

# Token kind constants. Keywords get their own kind equal to the keyword
# text, which keeps parser code readable (``expect("class")``).
IDENT = "IDENT"
INT_LIT = "INT_LIT"
CHAR_LIT = "CHAR_LIT"
STRING_LIT = "STRING_LIT"
EOF = "EOF"

KEYWORDS = frozenset(
    [
        "class",
        "extends",
        "public",
        "private",
        "protected",
        "static",
        "final",
        "native",
        "void",
        "int",
        "boolean",
        "char",
        "if",
        "else",
        "while",
        "for",
        "return",
        "new",
        "null",
        "true",
        "false",
        "this",
        "super",
        "try",
        "catch",
        "throw",
        "synchronized",
        "break",
        "continue",
        "instanceof",
    ]
)

# Multi-character operators must be listed before their prefixes.
OPERATORS = (
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    ".",
    ",",
    ";",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
)

PRIMITIVE_TYPES = frozenset(["int", "boolean", "char"])


class Token:
    """A single lexical token with its source position.

    ``kind`` is one of the constants above, a keyword string, or an
    operator string. ``value`` carries the decoded payload for literals
    and the name for identifiers.
    """

    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind: str, value, pos: SourcePosition) -> None:
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self) -> str:
        return f"Token({self.kind!r}, {self.value!r}, {self.pos})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Token)
            and self.kind == other.kind
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.value))
