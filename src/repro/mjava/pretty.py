"""Pretty-printer emitting parseable mini-Java source from an AST.

``parse_program(pretty_print(prog))`` is structurally equal to ``prog``;
a hypothesis property test in tests/mjava/test_roundtrip.py checks this.
The printer fully parenthesizes nested binary expressions, which keeps it
simple and keeps the round trip exact.
"""

from __future__ import annotations

from typing import List

from repro.mjava import ast

_CHAR_ESCAPES = {
    "\n": "\\n",
    "\t": "\\t",
    "\r": "\\r",
    "\0": "\\0",
    "\\": "\\\\",
    "\b": "\\b",
    "\f": "\\f",
}


def _escape_char(ch: str) -> str:
    if ch in _CHAR_ESCAPES:
        return _CHAR_ESCAPES[ch]
    if ch == "'":
        return "\\'"
    return ch


def _escape_string(text: str) -> str:
    out = []
    for ch in text:
        if ch in _CHAR_ESCAPES:
            out.append(_CHAR_ESCAPES[ch])
        elif ch == '"':
            out.append('\\"')
        else:
            out.append(ch)
    return "".join(out)


def format_type(type_: ast.Type) -> str:
    return repr(type_)


def format_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.IntLit):
        # The parser folds '-<literal>' back into a negative IntLit, so
        # this round-trips exactly.
        if expr.value < 0:
            return f"(-{-expr.value})"
        return str(expr.value)
    if isinstance(expr, ast.CharLit):
        return f"'{_escape_char(expr.value)}'"
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.StringLit):
        return f'"{_escape_string(expr.value)}"'
    if isinstance(expr, ast.NullLit):
        return "null"
    if isinstance(expr, ast.This):
        return "this"
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.FieldAccess):
        return f"{_postfix_target(expr.target)}.{expr.name}"
    if isinstance(expr, ast.Index):
        return f"{_postfix_target(expr.array)}[{format_expr(expr.index)}]"
    if isinstance(expr, ast.Call):
        args = ", ".join(format_expr(a) for a in expr.args)
        if expr.target is None:
            return f"{expr.name}({args})"
        return f"{_postfix_target(expr.target)}.{expr.name}({args})"
    if isinstance(expr, ast.SuperMethodCall):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"super.{expr.name}({args})"
    if isinstance(expr, ast.New):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"new {expr.class_name}({args})"
    if isinstance(expr, ast.NewArray):
        base = expr.element_type
        suffixes = ""
        while isinstance(base, ast.ArrayType):
            suffixes += "[]"
            base = base.element
        return f"new {format_type(base)}[{format_expr(expr.length)}]{suffixes}"
    if isinstance(expr, ast.Unary):
        return f"({expr.op}{format_expr(expr.operand)})"
    if isinstance(expr, ast.Binary):
        return f"({format_expr(expr.left)} {expr.op} {format_expr(expr.right)})"
    if isinstance(expr, ast.InstanceOf):
        return f"({format_expr(expr.value)} instanceof {expr.class_name})"
    if isinstance(expr, ast.Cast):
        return f"((({format_type(expr.type)}) {format_expr(expr.value)}))"
    raise TypeError(f"unknown expression node: {type(expr).__name__}")


def _postfix_target(expr: ast.Expr) -> str:
    """Format an expression appearing before '.', '[' — parenthesize
    anything that is not already a postfix/primary form."""
    text = format_expr(expr)
    if isinstance(
        expr,
        (
            ast.Name,
            ast.This,
            ast.FieldAccess,
            ast.Index,
            ast.Call,
            ast.SuperMethodCall,
            ast.StringLit,
        ),
    ):
        return text
    return f"({text})"


class _Printer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def print_program(self, program: ast.Program) -> str:
        for cls in program.classes:
            self.print_class(cls)
            self.emit("")
        return "\n".join(self.lines).rstrip() + "\n"

    def print_class(self, cls: ast.ClassDecl) -> None:
        header = f"class {cls.name}"
        if cls.superclass:
            header += f" extends {cls.superclass}"
        self.emit(header + " {")
        self.depth += 1
        for field in cls.fields:
            init = f" = {format_expr(field.init)}" if field.init is not None else ""
            self.emit(f"{self._mods(field.mods)}{format_type(field.type)} {field.name}{init};")
        for ctor in cls.ctors:
            params = ", ".join(f"{format_type(p.type)} {p.name}" for p in ctor.params)
            self.emit(f"{self._mods(ctor.mods)}{ctor.name}({params}) {{")
            self.depth += 1
            for stmt in ctor.body.stmts:
                self.print_stmt(stmt)
            self.depth -= 1
            self.emit("}")
        for method in cls.methods:
            params = ", ".join(f"{format_type(p.type)} {p.name}" for p in method.params)
            sig = (
                f"{self._mods(method.mods)}{format_type(method.return_type)} "
                f"{method.name}({params})"
            )
            if method.body is None:
                self.emit(sig + ";")
                continue
            self.emit(sig + " {")
            self.depth += 1
            for stmt in method.body.stmts:
                self.print_stmt(stmt)
            self.depth -= 1
            self.emit("}")
        self.depth -= 1
        self.emit("}")

    @staticmethod
    def _mods(mods: ast.Modifiers) -> str:
        parts = []
        if mods.visibility != "package":
            parts.append(mods.visibility)
        if mods.static:
            parts.append("static")
        if mods.final:
            parts.append("final")
        if mods.native:
            parts.append("native")
        return " ".join(parts) + (" " if parts else "")

    def print_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.emit("{")
            self.depth += 1
            for inner in stmt.stmts:
                self.print_stmt(inner)
            self.depth -= 1
            self.emit("}")
        elif isinstance(stmt, ast.VarDecl):
            init = f" = {format_expr(stmt.init)}" if stmt.init is not None else ""
            self.emit(f"{format_type(stmt.type)} {stmt.name}{init};")
        elif isinstance(stmt, ast.ExprStmt):
            self.emit(f"{format_expr(stmt.expr)};")
        elif isinstance(stmt, ast.Assign):
            self.emit(f"{format_expr(stmt.target)} = {format_expr(stmt.value)};")
        elif isinstance(stmt, ast.If):
            self.emit(f"if ({format_expr(stmt.cond)})")
            self._print_nested(stmt.then)
            if stmt.otherwise is not None:
                self.emit("else")
                self._print_nested(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            self.emit(f"while ({format_expr(stmt.cond)})")
            self._print_nested(stmt.body)
        elif isinstance(stmt, ast.For):
            init = self._inline_stmt(stmt.init) if stmt.init is not None else ""
            cond = format_expr(stmt.cond) if stmt.cond is not None else ""
            update = self._inline_stmt(stmt.update, trailing=False) if stmt.update else ""
            self.emit(f"for ({init} {cond}; {update})")
            self._print_nested(stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.emit("return;")
            else:
                self.emit(f"return {format_expr(stmt.value)};")
        elif isinstance(stmt, ast.Throw):
            self.emit(f"throw {format_expr(stmt.value)};")
        elif isinstance(stmt, ast.Break):
            self.emit("break;")
        elif isinstance(stmt, ast.Continue):
            self.emit("continue;")
        elif isinstance(stmt, ast.Try):
            self.emit("try")
            self._print_nested(stmt.body)
            for clause in stmt.catches:
                self.emit(f"catch ({clause.exc_class} {clause.var})")
                self._print_nested(clause.body)
        elif isinstance(stmt, ast.Synchronized):
            self.emit(f"synchronized ({format_expr(stmt.monitor)})")
            self._print_nested(stmt.body)
        elif isinstance(stmt, ast.SuperCall):
            args = ", ".join(format_expr(a) for a in stmt.args)
            self.emit(f"super({args});")
        else:
            raise TypeError(f"unknown statement node: {type(stmt).__name__}")

    @staticmethod
    def _inline_stmt(stmt: ast.Stmt, trailing: bool = True) -> str:
        suffix = ";" if trailing else ""
        if isinstance(stmt, ast.VarDecl):
            init = f" = {format_expr(stmt.init)}" if stmt.init is not None else ""
            return f"{format_type(stmt.type)} {stmt.name}{init}{suffix}"
        if isinstance(stmt, ast.Assign):
            return f"{format_expr(stmt.target)} = {format_expr(stmt.value)}{suffix}"
        if isinstance(stmt, ast.ExprStmt):
            return f"{format_expr(stmt.expr)}{suffix}"
        raise TypeError(f"statement not allowed in for-header: {type(stmt).__name__}")

    def _print_nested(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.print_stmt(stmt)
        else:
            self.depth += 1
            self.print_stmt(stmt)
            self.depth -= 1


def pretty_print(program: ast.Program) -> str:
    """Render a program AST back to parseable mini-Java source."""
    return _Printer().print_program(program)
