"""Pretty-printer emitting parseable mini-Java source from an AST.

``parse_program(pretty_print(prog))`` is structurally equal to ``prog``;
a hypothesis property test in tests/mjava/test_roundtrip.py checks this.
The printer fully parenthesizes nested binary expressions, which keeps it
simple and keeps the round trip exact.
"""

from __future__ import annotations

import difflib
from typing import List, Optional, Tuple

from repro.mjava import ast

_CHAR_ESCAPES = {
    "\n": "\\n",
    "\t": "\\t",
    "\r": "\\r",
    "\0": "\\0",
    "\\": "\\\\",
    "\b": "\\b",
    "\f": "\\f",
}


def _escape_char(ch: str) -> str:
    if ch in _CHAR_ESCAPES:
        return _CHAR_ESCAPES[ch]
    if ch == "'":
        return "\\'"
    return ch


def _escape_string(text: str) -> str:
    out = []
    for ch in text:
        if ch in _CHAR_ESCAPES:
            out.append(_CHAR_ESCAPES[ch])
        elif ch == '"':
            out.append('\\"')
        else:
            out.append(ch)
    return "".join(out)


def format_type(type_: ast.Type) -> str:
    return repr(type_)


def format_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.IntLit):
        # The parser folds '-<literal>' back into a negative IntLit, so
        # this round-trips exactly.
        if expr.value < 0:
            return f"(-{-expr.value})"
        return str(expr.value)
    if isinstance(expr, ast.CharLit):
        return f"'{_escape_char(expr.value)}'"
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.StringLit):
        return f'"{_escape_string(expr.value)}"'
    if isinstance(expr, ast.NullLit):
        return "null"
    if isinstance(expr, ast.This):
        return "this"
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.FieldAccess):
        return f"{_postfix_target(expr.target)}.{expr.name}"
    if isinstance(expr, ast.Index):
        return f"{_postfix_target(expr.array)}[{format_expr(expr.index)}]"
    if isinstance(expr, ast.Call):
        args = ", ".join(format_expr(a) for a in expr.args)
        if expr.target is None:
            return f"{expr.name}({args})"
        return f"{_postfix_target(expr.target)}.{expr.name}({args})"
    if isinstance(expr, ast.SuperMethodCall):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"super.{expr.name}({args})"
    if isinstance(expr, ast.New):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"new {expr.class_name}({args})"
    if isinstance(expr, ast.NewArray):
        base = expr.element_type
        suffixes = ""
        while isinstance(base, ast.ArrayType):
            suffixes += "[]"
            base = base.element
        return f"new {format_type(base)}[{format_expr(expr.length)}]{suffixes}"
    if isinstance(expr, ast.Unary):
        return f"({expr.op}{format_expr(expr.operand)})"
    if isinstance(expr, ast.Binary):
        return f"({format_expr(expr.left)} {expr.op} {format_expr(expr.right)})"
    if isinstance(expr, ast.InstanceOf):
        return f"({format_expr(expr.value)} instanceof {expr.class_name})"
    if isinstance(expr, ast.Cast):
        return f"((({format_type(expr.type)}) {format_expr(expr.value)}))"
    raise TypeError(f"unknown expression node: {type(expr).__name__}")


def _postfix_target(expr: ast.Expr) -> str:
    """Format an expression appearing before '.', '[' — parenthesize
    anything that is not already a postfix/primary form."""
    text = format_expr(expr)
    if isinstance(
        expr,
        (
            ast.Name,
            ast.This,
            ast.FieldAccess,
            ast.Index,
            ast.Call,
            ast.SuperMethodCall,
            ast.StringLit,
        ),
    ):
        return text
    return f"({text})"


class _Printer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0
        # Origin tracking for SourceMap: the original-source line of the
        # construct each printed line came from. Structural lines
        # (braces, blanks) inherit the nearest preceding construct.
        self.origins: List[Optional[int]] = []
        self._current: Optional[int] = None

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)
        self.origins.append(self._current)

    def print_program(self, program: ast.Program) -> str:
        for cls in program.classes:
            self.print_class(cls)
            self.emit("")
        return "\n".join(self.lines).rstrip() + "\n"

    def print_class(self, cls: ast.ClassDecl) -> None:
        self._current = cls.pos.line
        header = f"class {cls.name}"
        if cls.superclass:
            header += f" extends {cls.superclass}"
        self.emit(header + " {")
        self.depth += 1
        for field in cls.fields:
            self._current = field.pos.line
            init = f" = {format_expr(field.init)}" if field.init is not None else ""
            self.emit(f"{self._mods(field.mods)}{format_type(field.type)} {field.name}{init};")
        for ctor in cls.ctors:
            self._current = ctor.pos.line
            params = ", ".join(f"{format_type(p.type)} {p.name}" for p in ctor.params)
            self.emit(f"{self._mods(ctor.mods)}{ctor.name}({params}) {{")
            self.depth += 1
            for stmt in ctor.body.stmts:
                self.print_stmt(stmt)
            self.depth -= 1
            self.emit("}")
        for method in cls.methods:
            self._current = method.pos.line
            params = ", ".join(f"{format_type(p.type)} {p.name}" for p in method.params)
            sig = (
                f"{self._mods(method.mods)}{format_type(method.return_type)} "
                f"{method.name}({params})"
            )
            if method.body is None:
                self.emit(sig + ";")
                continue
            self.emit(sig + " {")
            self.depth += 1
            for stmt in method.body.stmts:
                self.print_stmt(stmt)
            self.depth -= 1
            self.emit("}")
        self.depth -= 1
        self.emit("}")

    @staticmethod
    def _mods(mods: ast.Modifiers) -> str:
        parts = []
        if mods.visibility != "package":
            parts.append(mods.visibility)
        if mods.static:
            parts.append("static")
        if mods.final:
            parts.append("final")
        if mods.native:
            parts.append("native")
        return " ".join(parts) + (" " if parts else "")

    def print_stmt(self, stmt: ast.Stmt) -> None:
        self._current = stmt.pos.line
        if isinstance(stmt, ast.Block):
            self.emit("{")
            self.depth += 1
            for inner in stmt.stmts:
                self.print_stmt(inner)
            self.depth -= 1
            self.emit("}")
        elif isinstance(stmt, ast.VarDecl):
            init = f" = {format_expr(stmt.init)}" if stmt.init is not None else ""
            self.emit(f"{format_type(stmt.type)} {stmt.name}{init};")
        elif isinstance(stmt, ast.ExprStmt):
            self.emit(f"{format_expr(stmt.expr)};")
        elif isinstance(stmt, ast.Assign):
            self.emit(f"{format_expr(stmt.target)} = {format_expr(stmt.value)};")
        elif isinstance(stmt, ast.If):
            self.emit(f"if ({format_expr(stmt.cond)})")
            self._print_nested(stmt.then)
            if stmt.otherwise is not None:
                self.emit("else")
                self._print_nested(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            self.emit(f"while ({format_expr(stmt.cond)})")
            self._print_nested(stmt.body)
        elif isinstance(stmt, ast.For):
            init = self._inline_stmt(stmt.init) if stmt.init is not None else ""
            cond = format_expr(stmt.cond) if stmt.cond is not None else ""
            update = self._inline_stmt(stmt.update, trailing=False) if stmt.update else ""
            self.emit(f"for ({init} {cond}; {update})")
            self._print_nested(stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.emit("return;")
            else:
                self.emit(f"return {format_expr(stmt.value)};")
        elif isinstance(stmt, ast.Throw):
            self.emit(f"throw {format_expr(stmt.value)};")
        elif isinstance(stmt, ast.Break):
            self.emit("break;")
        elif isinstance(stmt, ast.Continue):
            self.emit("continue;")
        elif isinstance(stmt, ast.Try):
            self.emit("try")
            self._print_nested(stmt.body)
            for clause in stmt.catches:
                self.emit(f"catch ({clause.exc_class} {clause.var})")
                self._print_nested(clause.body)
        elif isinstance(stmt, ast.Synchronized):
            self.emit(f"synchronized ({format_expr(stmt.monitor)})")
            self._print_nested(stmt.body)
        elif isinstance(stmt, ast.SuperCall):
            args = ", ".join(format_expr(a) for a in stmt.args)
            self.emit(f"super({args});")
        else:
            raise TypeError(f"unknown statement node: {type(stmt).__name__}")

    @staticmethod
    def _inline_stmt(stmt: ast.Stmt, trailing: bool = True) -> str:
        suffix = ";" if trailing else ""
        if isinstance(stmt, ast.VarDecl):
            init = f" = {format_expr(stmt.init)}" if stmt.init is not None else ""
            return f"{format_type(stmt.type)} {stmt.name}{init}{suffix}"
        if isinstance(stmt, ast.Assign):
            return f"{format_expr(stmt.target)} = {format_expr(stmt.value)}{suffix}"
        if isinstance(stmt, ast.ExprStmt):
            return f"{format_expr(stmt.expr)}{suffix}"
        raise TypeError(f"statement not allowed in for-header: {type(stmt).__name__}")

    def _print_nested(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.print_stmt(stmt)
        else:
            self.depth += 1
            self.print_stmt(stmt)
            self.depth -= 1


def pretty_print(program: ast.Program) -> str:
    """Render a program AST back to parseable mini-Java source."""
    return _Printer().print_program(program)


class SourceMap:
    """Printed line → original source line, from the positions the AST
    still carries. Patch appliers preserve node positions (clones keep
    ``pos``; inserted statements borrow their neighbor's), so a span in
    a pipeline report can be located in both the original file and the
    pretty-printed revision."""

    __slots__ = ("_origins",)

    def __init__(self, origins: List[Optional[int]]) -> None:
        self._origins = origins

    def original_line(self, printed_line: int) -> Optional[int]:
        """Original line for 1-based ``printed_line`` (None for
        structural lines before any construct, or out of range)."""
        if 1 <= printed_line <= len(self._origins):
            return self._origins[printed_line - 1]
        return None

    def printed_lines(self, original_line: int) -> List[int]:
        """All 1-based printed lines that came from ``original_line``."""
        return [
            i + 1 for i, line in enumerate(self._origins) if line == original_line
        ]

    def __len__(self) -> int:
        return len(self._origins)


def pretty_print_mapped(program: ast.Program) -> Tuple[str, SourceMap]:
    """Like :func:`pretty_print`, also returning the line-origin map."""
    printer = _Printer()
    text = printer.print_program(program)
    # print_program rstrips trailing blank lines; trim origins to match.
    count = text.count("\n")
    return text, SourceMap(printer.origins[:count])


def unified_source_diff(
    before: ast.Program,
    after: ast.Program,
    fromfile: str = "original",
    tofile: str = "revised",
    context_lines: int = 3,
) -> str:
    """Unified diff of two program ASTs via the pretty-printer — what
    ``repro optimize --diff`` prints. Both sides go through the same
    printer, so the diff shows exactly the pipeline's rewrites."""
    return "".join(
        difflib.unified_diff(
            pretty_print(before).splitlines(keepends=True),
            pretty_print(after).splitlines(keepends=True),
            fromfile=fromfile,
            tofile=tofile,
            n=context_lines,
        )
    )
