"""Source metrics for Table 1: class and statement counts."""

from __future__ import annotations

from typing import Tuple

from repro.mjava import ast
from repro.mjava.parser import parse_program


def count_statements(program: ast.Program, include_library: bool = False) -> int:
    """Number of source statements (block braces excluded), the measure
    Table 1 reports as "Stmts"."""
    count = 0
    for cls in program.classes:
        if cls.is_library and not include_library:
            continue
        bodies = [ctor.body for ctor in cls.ctors]
        bodies += [m.body for m in cls.methods if m.body is not None]
        for body in bodies:
            for node in body.walk():
                if isinstance(node, ast.Stmt) and not isinstance(node, ast.Block):
                    count += 1
        # field declarations count as statements too
        count += len(cls.fields)
    return count


def count_classes(program: ast.Program, include_library: bool = False) -> int:
    return sum(
        1 for cls in program.classes if include_library or not cls.is_library
    )


def source_metrics(source: str) -> Tuple[int, int]:
    """(classes, statements) of an application source text."""
    program = parse_program(source)
    return count_classes(program), count_statements(program)
