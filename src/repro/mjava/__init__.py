"""Mini-Java frontend: lexer, AST, parser, pretty-printer, sema, compiler.

The mini-Java language is the substrate standing in for Java in this
reproduction: a single-inheritance class-based language with visibility
modifiers, static members, arrays, strings, exceptions and ``synchronized``
blocks — rich enough to express the drag patterns of the paper's nine
benchmarks and to give the static analyses of Section 5 something real to
analyze.
"""

from repro.mjava.lexer import tokenize
from repro.mjava.parser import parse_program
from repro.mjava.pretty import pretty_print

__all__ = ["tokenize", "parse_program", "pretty_print"]
