"""Semantic model for mini-Java: the class table and name resolution.

The class table is shared infrastructure: the compiler consults it while
emitting bytecode, and the Section-5 static analyses (call graph, usage,
liveness) consult it when reasoning about source programs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SemanticError
from repro.mjava import ast


class ClassInfo:
    """Resolved information about one class declaration."""

    __slots__ = ("decl", "name", "super_name", "fields", "methods", "ctor", "is_library")

    def __init__(self, decl: ast.ClassDecl) -> None:
        self.decl = decl
        self.name = decl.name
        self.super_name = decl.superclass
        self.fields: Dict[str, ast.FieldDecl] = {}
        self.methods: Dict[str, ast.MethodDecl] = {}
        self.ctor: Optional[ast.CtorDecl] = None
        self.is_library = decl.is_library
        for field in decl.fields:
            if field.name in self.fields:
                raise SemanticError(f"duplicate field {decl.name}.{field.name}", field.pos)
            self.fields[field.name] = field
        for method in decl.methods:
            if method.name in self.methods:
                raise SemanticError(
                    f"duplicate method {decl.name}.{method.name} (overloading is not supported)",
                    method.pos,
                )
            self.methods[method.name] = method
        if len(decl.ctors) > 1:
            raise SemanticError(
                f"class {decl.name} has multiple constructors (overloading is not supported)",
                decl.ctors[1].pos,
            )
        self.ctor = decl.ctors[0] if decl.ctors else None


class ClassTable:
    """All classes of a program, with resolution and subtyping queries."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.classes: Dict[str, ClassInfo] = {}
        for decl in program.classes:
            if decl.name in self.classes:
                raise SemanticError(f"duplicate class {decl.name}", decl.pos)
            self.classes[decl.name] = ClassInfo(decl)
        self._check_hierarchy()
        self._check_overrides()

    # -- construction checks ------------------------------------------------

    def _check_hierarchy(self) -> None:
        for info in self.classes.values():
            if info.super_name is None:
                continue
            if info.super_name not in self.classes:
                raise SemanticError(
                    f"class {info.name} extends unknown class {info.super_name}",
                    info.decl.pos,
                )
            # cycle detection
            seen = {info.name}
            current = info.super_name
            while current is not None:
                if current in seen:
                    raise SemanticError(f"inheritance cycle involving {info.name}", info.decl.pos)
                seen.add(current)
                current = self.classes[current].super_name
            # field shadowing is disallowed (keeps layouts and analyses simple)
            for field_name in info.fields:
                sup = self.classes.get(info.super_name)
                while sup is not None:
                    if field_name in sup.fields:
                        raise SemanticError(
                            f"field {info.name}.{field_name} shadows {sup.name}.{field_name}",
                            info.fields[field_name].pos,
                        )
                    sup = self.classes.get(sup.super_name) if sup.super_name else None

    def _check_overrides(self) -> None:
        for info in self.classes.values():
            if info.super_name is None:
                continue
            for name, method in info.methods.items():
                inherited = self.resolve_method(info.super_name, name)
                if inherited is None:
                    continue
                _, parent = inherited
                if parent.mods.static != method.mods.static:
                    raise SemanticError(
                        f"{info.name}.{name} changes staticness of inherited method", method.pos
                    )
                if len(parent.params) != len(method.params):
                    raise SemanticError(
                        f"{info.name}.{name} overrides with different arity", method.pos
                    )
                if parent.return_type != method.return_type:
                    raise SemanticError(
                        f"{info.name}.{name} overrides with different return type", method.pos
                    )

    # -- queries -------------------------------------------------------------

    def get(self, name: str) -> ClassInfo:
        info = self.classes.get(name)
        if info is None:
            raise SemanticError(f"unknown class {name}")
        return info

    def has(self, name: str) -> bool:
        return name in self.classes

    def superclass_chain(self, name: str) -> List[str]:
        chain = []
        current: Optional[str] = name
        while current is not None:
            chain.append(current)
            current = self.classes[current].super_name
        return chain

    def resolve_field(self, class_name: str, field_name: str) -> Optional[Tuple[ClassInfo, ast.FieldDecl]]:
        """Find the declaring class of an (instance or static) field,
        walking up the superclass chain."""
        current: Optional[str] = class_name
        while current is not None:
            info = self.classes.get(current)
            if info is None:
                return None
            field = info.fields.get(field_name)
            if field is not None:
                return info, field
            current = info.super_name
        return None

    def resolve_method(self, class_name: str, method_name: str) -> Optional[Tuple[ClassInfo, ast.MethodDecl]]:
        """Find the first declaration of a method up the superclass chain."""
        current: Optional[str] = class_name
        while current is not None:
            info = self.classes.get(current)
            if info is None:
                return None
            method = info.methods.get(method_name)
            if method is not None:
                return info, method
            current = info.super_name
        return None

    def is_subtype(self, sub: str, sup: str) -> bool:
        if sup == "Object":
            return True
        current: Optional[str] = sub
        while current is not None:
            if current == sup:
                return True
            info = self.classes.get(current)
            current = info.super_name if info else None
        return False

    def assignable(self, target: ast.Type, value: ast.Type) -> bool:
        """May a value of static type ``value`` be assigned to ``target``?"""
        if target == value:
            return True
        if isinstance(target, ast.PrimitiveType) or isinstance(value, ast.PrimitiveType):
            # char widens to int; everything else must match exactly.
            return target == ast.INT and value == ast.CHAR
        if value == ast.NULL_TYPE:
            return target.is_reference()
        if isinstance(target, ast.ClassType) and isinstance(value, ast.ClassType):
            return self.is_subtype(value.name, target.name)
        if isinstance(target, ast.ClassType) and isinstance(value, ast.ArrayType):
            return target.name == "Object"
        if isinstance(target, ast.ArrayType) and isinstance(value, ast.ArrayType):
            # Covariant reference arrays, exact primitive arrays (like Java).
            if isinstance(target.element, ast.ClassType) and isinstance(value.element, ast.ClassType):
                return self.assignable(target.element, value.element)
            return target.element == value.element
        return False

    def subclasses_of(self, name: str) -> List[str]:
        """All classes (transitively) extending ``name``, excluding it."""
        out = []
        for info in self.classes.values():
            if info.name != name and self.is_subtype(info.name, name):
                out.append(info.name)
        return out


def descriptor(type_: ast.Type) -> str:
    """Runtime storage descriptor for a source type."""
    if isinstance(type_, ast.PrimitiveType):
        if type_.name == "void":
            return "void"
        return type_.name
    return "ref"


def type_repr(type_: ast.Type) -> str:
    """Canonical source spelling of a type ("Foo", "int[]", "char[][]")."""
    return repr(type_)
