"""Hand-written lexer for mini-Java.

Supports ``//`` line comments, ``/* */`` block comments, decimal integer
literals, character literals with the common escapes, and double-quoted
string literals.
"""

from __future__ import annotations

from typing import List

from repro.errors import LexError, SourcePosition
from repro.mjava.tokens import (
    CHAR_LIT,
    EOF,
    IDENT,
    INT_LIT,
    KEYWORDS,
    OPERATORS,
    STRING_LIT,
    Token,
)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "b": "\b",
    "f": "\f",
}


class _Lexer:
    def __init__(self, source: str) -> None:
        self.source = source
        self.index = 0
        self.line = 1
        self.col = 1

    def pos(self) -> SourcePosition:
        return SourcePosition(self.line, self.col)

    def peek(self, ahead: int = 0) -> str:
        i = self.index + ahead
        return self.source[i] if i < len(self.source) else ""

    def advance(self) -> str:
        ch = self.source[self.index]
        self.index += 1
        if ch == "\n":
            self.line += 1
            self.col = 1
        else:
            self.col += 1
        return ch

    def skip_trivia(self) -> None:
        while self.index < len(self.source):
            ch = self.peek()
            if ch in " \t\r\n":
                self.advance()
            elif ch == "/" and self.peek(1) == "/":
                while self.index < len(self.source) and self.peek() != "\n":
                    self.advance()
            elif ch == "/" and self.peek(1) == "*":
                start = self.pos()
                self.advance()
                self.advance()
                while not (self.peek() == "*" and self.peek(1) == "/"):
                    if self.index >= len(self.source):
                        raise LexError("unterminated block comment", start)
                    self.advance()
                self.advance()
                self.advance()
            else:
                return

    def read_escape(self, start: SourcePosition) -> str:
        ch = self.advance()
        if ch != "\\":
            return ch
        esc = self.advance() if self.index < len(self.source) else ""
        if esc not in _ESCAPES:
            raise LexError(f"unknown escape sequence '\\{esc}'", start)
        return _ESCAPES[esc]

    def next_token(self) -> Token:
        self.skip_trivia()
        start = self.pos()
        if self.index >= len(self.source):
            return Token(EOF, None, start)
        ch = self.peek()
        if ch.isalpha() or ch == "_":
            name = []
            while self.peek().isalnum() or self.peek() == "_":
                name.append(self.advance())
            text = "".join(name)
            if text in KEYWORDS:
                return Token(text, text, start)
            return Token(IDENT, text, start)
        if ch.isdigit():
            digits = []
            while self.peek().isdigit():
                digits.append(self.advance())
            if self.peek().isalpha():
                raise LexError("identifier may not start with a digit", start)
            return Token(INT_LIT, int("".join(digits)), start)
        if ch == "'":
            self.advance()
            if self.peek() == "'":
                raise LexError("empty character literal", start)
            value = self.read_escape(start)
            if self.index >= len(self.source) or self.peek() != "'":
                raise LexError("unterminated character literal", start)
            self.advance()
            return Token(CHAR_LIT, value, start)
        if ch == '"':
            self.advance()
            chars = []
            while True:
                if self.index >= len(self.source) or self.peek() == "\n":
                    raise LexError("unterminated string literal", start)
                if self.peek() == '"':
                    self.advance()
                    break
                chars.append(self.read_escape(start))
            return Token(STRING_LIT, "".join(chars), start)
        for op in OPERATORS:
            if self.source.startswith(op, self.index):
                for _ in op:
                    self.advance()
                return Token(op, op, start)
        raise LexError(f"unexpected character {ch!r}", start)


def tokenize(source: str) -> List[Token]:
    """Tokenize mini-Java source into a list ending with an EOF token."""
    lexer = _Lexer(source)
    tokens: List[Token] = []
    while True:
        token = lexer.next_token()
        tokens.append(token)
        if token.kind == EOF:
            return tokens
