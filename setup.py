"""Legacy setup shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on environments whose setuptools predates the
wheel merge (offline editable installs fall back to ``setup.py develop``,
which needs no wheel package).
"""

from setuptools import setup

setup()
