"""The ``repro lint`` subcommand: formats, gates, rules, --profile —
and the guarantee that it runs clean over every example program and
every registered benchmark."""

import glob
import json
import os

import pytest

from repro.cli import main
from repro.lint import lint_program
from repro.runtime.library import link

PROGRAM = """
class Main {
    public static void main(String[] args) {
        char[] wasted = new char[5000];
        int x = 1;
        System.printInt(x);
    }
    static int orphan() { return 9; }
}
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "program.mj"
    path.write_text(PROGRAM)
    return str(path)


def test_lint_text_output_and_exit_zero(program_file, capsys):
    assert main(["lint", program_file]) == 0
    out = capsys.readouterr().out
    assert "DRAG001" in out and "DRAG004" in out
    assert "wasted" in out


def test_lint_auto_detects_main_class(program_file, capsys):
    assert main(["lint", program_file]) == 0
    assert "(main Main)" in capsys.readouterr().out


def test_lint_explicit_main(program_file, capsys):
    assert main(["lint", program_file, "--main", "Main"]) == 0


def test_lint_fail_on_gates_exit_code(program_file, capsys):
    assert main(["lint", program_file, "--fail-on", "error"]) == 0
    capsys.readouterr()
    assert main(["lint", program_file, "--fail-on", "warning"]) == 1


def test_lint_json_format(program_file, capsys):
    assert main(["lint", program_file, "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["main_class"] == "Main"
    assert any(d["rule_id"] == "DRAG001" for d in data["diagnostics"])


def test_lint_sarif_format(program_file, capsys):
    assert main(["lint", program_file, "--format", "sarif"]) == 0
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"
    assert sarif["runs"][0]["results"]


def test_lint_rule_selection(program_file, capsys):
    assert main(["lint", program_file, "--rule", "DRAG004"]) == 0
    out = capsys.readouterr().out
    assert "DRAG004" in out and "DRAG001" not in out


def test_lint_unknown_rule_rejected(program_file, capsys):
    assert main(["lint", program_file, "--rule", "DRAG999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_lint_with_profile_ranks_by_drag(program_file, tmp_path, capsys):
    log = str(tmp_path / "run.draglog")
    assert main(["profile", program_file, "--main", "Main", "--log", log]) == 0
    capsys.readouterr()
    assert main(["lint", program_file, "--profile", log]) == 0
    out = capsys.readouterr().out
    assert "+ profile" in out.splitlines()[0]
    assert "drag" in out  # at least one finding carries measured drag


def test_lint_missing_file(capsys):
    assert main(["lint", "/nonexistent.mj"]) == 2


# -- acceptance sweep ---------------------------------------------------------


def test_lint_runs_on_every_example_program(capsys):
    examples = os.path.join(os.path.dirname(__file__), "..", "..", "examples", "programs")
    programs = sorted(glob.glob(os.path.join(examples, "*.mj")))
    assert programs, "expected example programs"
    for path in programs:
        assert main(["lint", path, "--format", "sarif"]) == 0, path
        capsys.readouterr()


def test_lint_runs_on_every_registered_benchmark():
    from repro.benchmarks.registry import all_benchmarks

    for name, bench in sorted(all_benchmarks().items()):
        result = lint_program(link(bench.original), bench.main_class)
        # every benchmark has at least one statically visible drag
        # opportunity (the paper found one in all nine)
        assert result.diagnostics, name
