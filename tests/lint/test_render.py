"""Output formats: text, JSON, and the SARIF 2.1.0 shape."""

import json

import pytest

from repro.lint import lint_program, render, to_json, to_sarif
from repro.lint.rules import ALL_RULES
from repro.runtime.library import link

SOURCE = """
class Main {
    public static void main(String[] args) {
        char[] wasted = new char[3000];
        System.printInt(7);
    }
    static int orphan() { return 1; }
}
"""


@pytest.fixture(scope="module")
def result():
    return lint_program(link(SOURCE), "Main", program_path="main.mj")


def test_text_output_names_rules_and_counts(result):
    text = render(result, "text")
    assert "lint: main.mj (main Main)" in text.splitlines()[0]
    assert "DRAG001" in text and "DRAG004" in text
    assert "finding(s):" in text.splitlines()[-1]
    for line in text.splitlines():
        if line.startswith(("error", "warning", "note")):
            # "severity RULEID Class.member:line: message"
            parts = line.split()
            assert parts[1].startswith("DRAG")
            assert ":" in parts[2]


def test_json_output_shape(result):
    data = json.loads(render(result, "json"))
    assert data["program"] == "main.mj"
    assert data["main_class"] == "Main"
    assert data["profile"] is None
    assert data["counts"]
    for diag in data["diagnostics"]:
        assert diag["rule_id"].startswith("DRAG")
        assert diag["severity"] in ("error", "warning", "note")
        assert diag["label"] == f"{diag['class']}.{diag['member']}:{diag['line']}"
        assert isinstance(diag["subject"], list)


def test_unknown_format_rejected(result):
    with pytest.raises(ValueError, match="unknown format"):
        render(result, "xml")


# -- SARIF 2.1.0 --------------------------------------------------------------


def test_sarif_envelope(result):
    sarif = to_sarif(result)
    assert sarif["version"] == "2.1.0"
    assert sarif["$schema"].endswith("sarif-2.1.0.json")
    assert len(sarif["runs"]) == 1


def test_sarif_driver_declares_every_rule(result):
    driver = to_sarif(result)["runs"][0]["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    declared = [rule["id"] for rule in driver["rules"]]
    assert declared == [rule.rule_id for rule in ALL_RULES]
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in ("error", "warning", "note")


def test_sarif_results_reference_rules_by_index(result):
    run = to_sarif(result)["runs"][0]
    rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert run["results"], "expected findings on the fixture program"
    for res in run["results"]:
        assert rule_ids[res["ruleIndex"]] == res["ruleId"]
        assert res["level"] in ("error", "warning", "note")
        assert res["message"]["text"]
        location = res["locations"][0]
        assert location["physicalLocation"]["artifactLocation"]["uri"] == "main.mj"
        assert location["physicalLocation"]["region"]["startLine"] >= 1
        logical = location["logicalLocations"][0]
        assert logical["fullyQualifiedName"].count(":") == 1


def test_sarif_is_stable_json(result):
    once = render(result, "sarif")
    twice = render(result, "sarif")
    assert once == twice
    json.loads(once)  # round-trips


def test_json_helper_matches_render(result):
    assert json.loads(render(result, "json")) == json.loads(
        json.dumps(to_json(result), sort_keys=True)
    )
