"""Each DRAG rule: one program that triggers it, one that must not."""

from repro.lint import lint_program
from repro.runtime.library import link


def lint_source(source, main_class="Main", rules=None):
    return lint_program(link(source), main_class, rules=rules)


def app_findings(result, rule_id):
    """Findings of a rule about application classes (the library rides
    along in every linked program; tests pin app behaviour)."""
    app = {"Main", "Holder", "Box", "Worker"}
    return [d for d in result.by_rule(rule_id) if d.span.class_name in app]


# -- DRAG001: never-used allocation -----------------------------------------


def test_drag001_reports_never_read_local():
    result = lint_source(
        """
class Main {
    public static void main(String[] args) {
        char[] wasted = new char[100];
        System.printInt(7);
    }
}
"""
    )
    found = app_findings(result, "DRAG001")
    assert any(d.subject == ("local", "Main", "main", "wasted") for d in found)
    hit = next(d for d in found if d.subject[-1] == "wasted")
    assert hit.span.label == "Main.main:4"
    assert hit.suggestion == "dead-code-removal"


def test_drag001_reports_write_only_field():
    result = lint_source(
        """
class Holder {
    int[] stash;
    Holder() { stash = new int[50]; }
}
class Main {
    public static void main(String[] args) {
        Holder h = new Holder();
        System.printInt(1);
    }
}
"""
    )
    assert any(
        d.subject == ("field", "Holder", "stash")
        for d in app_findings(result, "DRAG001")
    )


def test_drag001_silent_when_allocation_is_read():
    result = lint_source(
        """
class Main {
    public static void main(String[] args) {
        int[] used = new int[100];
        used[0] = 5;
        System.printInt(used[0]);
    }
}
"""
    )
    assert not app_findings(result, "DRAG001")


# -- DRAG002: droppable reference -------------------------------------------


def test_drag002_reports_local_with_early_last_use():
    result = lint_source(
        """
class Main {
    public static void main(String[] args) {
        char[] buffer = new char[500];
        buffer[0] = 'a';
        int x = buffer[0];
        slow();
        slow();
        System.printInt(x);
    }
    static void slow() {
        int t = 0;
        for (int i = 0; i < 50; i = i + 1) { t = t + i; }
    }
}
"""
    )
    found = app_findings(result, "DRAG002")
    assert any(d.subject == ("local", "Main", "main", "buffer") for d in found)
    hit = next(d for d in found if d.subject[-1] == "buffer")
    assert hit.extra["null_after_line"] == 6
    assert hit.suggestion == "assign-null"


def test_drag002_silent_when_used_until_the_end():
    result = lint_source(
        """
class Main {
    public static void main(String[] args) {
        int[] counts = new int[10];
        counts[0] = 1;
        System.printInt(counts[0]);
    }
}
"""
    )
    assert not [
        d for d in app_findings(result, "DRAG002") if d.subject[0] == "local"
    ]


def test_drag002_reports_logical_size_array_pair():
    result = lint_source(
        """
class Box {
    private Object[] items;
    int count;
    Box() { items = new Object[8]; count = 0; }
    void add(Object o) { items[count] = o; count = count + 1; }
    Object removeLast() {
        count = count - 1;
        Object gone = items[count];
        return gone;
    }
}
class Main {
    public static void main(String[] args) {
        Box box = new Box();
        box.add("a");
        box.add("b");
        box.removeLast();
        System.printInt(box.count);
    }
}
"""
    )
    assert any(
        d.subject == ("array", "Box", "items", "count")
        for d in app_findings(result, "DRAG002")
    )


# -- DRAG003: lazy allocation candidate --------------------------------------


def test_drag003_warning_when_all_gates_pass():
    result = lint_source(
        """
class Holder {
    Vector cache;
    int n;
    Holder(int n) {
        this.n = n;
        cache = new Vector(100);
    }
    int use() {
        if (n > 0) { cache.add("x"); return cache.size(); }
        return 0;
    }
}
class Main {
    public static void main(String[] args) {
        Holder h = new Holder(0);
        System.printInt(h.use());
    }
}
"""
    )
    found = app_findings(result, "DRAG003")
    hit = next(d for d in found if d.subject == ("field", "Holder", "cache"))
    assert hit.severity == "warning"
    assert hit.extra["all_gates_pass"] is True
    assert hit.span.member == "<init>"


def test_drag003_note_when_args_not_constant():
    result = lint_source(
        """
class Holder {
    int[] table;
    Holder(int size) { table = new int[size * 2]; }
    int get(int i) { return table[i]; }
}
class Main {
    public static void main(String[] args) {
        Holder h = new Holder(5);
        System.printInt(h.get(0));
    }
}
"""
    )
    found = app_findings(result, "DRAG003")
    hit = next(d for d in found if d.subject == ("field", "Holder", "table"))
    assert hit.severity == "note"
    assert hit.extra["all_gates_pass"] is False


def test_drag003_silent_without_ctor_allocation():
    result = lint_source(
        """
class Holder {
    int n;
    Holder(int n) { this.n = n; }
}
class Main {
    public static void main(String[] args) {
        Holder h = new Holder(3);
        System.printInt(h.n);
    }
}
"""
    )
    assert not app_findings(result, "DRAG003")


# -- DRAG004: unreachable method ---------------------------------------------


def test_drag004_reports_uncalled_method():
    result = lint_source(
        """
class Main {
    public static void main(String[] args) {
        System.printInt(1);
    }
    static int orphan() { return 42; }
}
"""
    )
    found = app_findings(result, "DRAG004")
    assert any(d.subject == ("method", "Main", "orphan") for d in found)
    assert all(d.severity == "note" for d in found)


def test_drag004_silent_when_everything_is_called():
    result = lint_source(
        """
class Main {
    public static void main(String[] args) {
        System.printInt(helper());
    }
    static int helper() { return 2; }
}
"""
    )
    assert not app_findings(result, "DRAG004")


# -- DRAG005: oversized array -------------------------------------------------


def test_drag005_reports_large_constant_array():
    result = lint_source(
        """
class Main {
    public static void main(String[] args) {
        int[] big = new int[1000];
        big[0] = 1;
        System.printInt(big[0]);
    }
}
"""
    )
    found = app_findings(result, "DRAG005")
    assert any(d.subject == ("array", "Main", "main", 4) for d in found)


def test_drag005_silent_for_small_arrays():
    result = lint_source(
        """
class Main {
    public static void main(String[] args) {
        int[] small = new int[8];
        small[0] = 1;
        System.printInt(small[0]);
    }
}
"""
    )
    assert not app_findings(result, "DRAG005")


# -- cross-rule behaviour -----------------------------------------------------


def test_rule_selection_limits_output():
    result = lint_source(
        """
class Main {
    public static void main(String[] args) {
        char[] wasted = new char[3000];
        System.printInt(7);
    }
    static int orphan() { return 1; }
}
""",
        rules=["DRAG004"],
    )
    assert result.counts().keys() == {"DRAG004"}


def test_severity_ordering_in_sorted_output():
    result = lint_source(
        """
class Main {
    public static void main(String[] args) {
        char[] wasted = new char[3000];
        System.printInt(7);
    }
    static int orphan() { return 1; }
}
"""
    )
    severities = [d.severity for d in result.sorted()]
    assert severities == sorted(
        severities, key=lambda s: {"error": 0, "warning": 1, "note": 2}[s]
    )
