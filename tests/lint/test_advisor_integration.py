"""The advisor and the linter share one analysis core.

Pins the two contracts the lint refactor made:

* the AdvisorReport on db and euler is byte-identical to a golden
  summary — consulting lint diagnostics changes no decision, and the
  heap-liveness planner's patches/coverage notes are pinned exactly;
* everything the advisor acts on (dead-code removals, nulled locals,
  cleared arrays) appears among the lint findings — the static path is
  a superset of the profile-driven one; and the advisor's shared
  AnalysisContext compiles and builds the call graph exactly once.
"""

import pytest

from repro.benchmarks.registry import get_benchmark
from repro.lint import lint_program
from repro.runtime.library import link
from repro.transform.advisor import Advisor
from repro.transform.dead_code import remove_dead_allocations

# Golden summaries for the deterministic interpreter (same profiler,
# same inputs). The heap-liveness planner cracks db's pattern-4 groups
# that the pre-heap advisor could only skip: the former "no
# transformation for this pattern" rows now carry heap patches or
# name the heap patch that covers them.
GOLDEN = {
    "db": """\
APPLIED  dead-code-removal  Locale.<init>:326                        13 allocation(s) removed
APPLIED  heap-assign-null   Db.main:70                               db.index = null inserted after Db.main:70
APPLIED  heap-assign-null   Db.main:70                               db.records = null inserted after Db.main:70
APPLIED  heap-assign-null   Vector.add:176                           1 dead heap store(s) now store null
skipped  heap-assign-null   ('DbRecord.<init>:8', 'Db.main:40')      pattern-4 drag released by heap-level patch(es) covering Db.main:40, DbRecord.<init>:8
APPLIED  assign-null        ('Db.main:66',)                          resultSet = null inserted after Db.main:68
skipped  -                  ('Db.main:60',)                          no transformation for this pattern (§3.4 pattern 4/unclassified)
skipped  heap-assign-null   ('Db.main:40',)                          pattern-4 drag released by heap-level patch(es) covering Db.main:40
skipped  heap-assign-null   ('HashTable.put:248', 'Database.insert:26', 'Db.main:40') pattern-4 drag released by heap-level patch(es) covering Db.main:40, HashTable.put:248
APPLIED  assign-null        ('Vector.ensureCapacity:213', 'Vector.add:175', 'Database.insert:25', 'Db.main:40') array liveness: cleared slots of [('data', 'count')] in Vector""",
    "euler": """\
APPLIED  dead-code-removal  Locale.<init>:326                        13 allocation(s) removed
APPLIED  heap-assign-null   Euler.main:79                            solver.grid = null inserted after Euler.main:79
skipped  assign-null        ('Row.<init>:7', 'Solver.<init>:41', 'Euler.main:70') no local variable assigned at Row.<init>:7
skipped  assign-null        ('Flux.<init>:21', 'Solver.step:61', 'Euler.main:74') no local variable assigned at Flux.<init>:21""",
}


def run_advisor(name):
    bench = get_benchmark(name)
    program = link(bench.original)
    advisor = Advisor(
        program, bench.main_class, bench.primary_args,
        interval_bytes=bench.interval_bytes,
    )
    revised, report = advisor.run()
    return bench, program, advisor, report


@pytest.mark.parametrize("name", ["db", "euler"])
def test_advisor_report_identical_to_golden(name):
    _, _, advisor, report = run_advisor(name)
    assert report.summary() == GOLDEN[name]
    # the shared context built each expensive artifact exactly once
    # across every site decision
    counts = advisor.context.build_counts
    assert counts.get("compile") == 1
    assert counts.get("table") == 1
    assert counts.get("callgraph", 0) <= 1


@pytest.mark.parametrize("name", ["db", "euler"])
def test_lint_findings_superset_of_advisor_actions(name):
    bench = get_benchmark(name)
    program = link(bench.original)
    lint = lint_program(program, bench.main_class)

    # every dead-code removal subject has a DRAG001 finding
    _, removals = remove_dead_allocations(program, bench.main_class)
    assert removals
    for removal in removals:
        cls, _, member = removal.where.partition(".")
        if removal.kind == "field-init":
            assert lint.find("DRAG001", "field", cls, member), removal
        elif removal.kind == "field-store":
            assert lint.find("DRAG001", "field", cls), removal
        elif removal.kind == "local":
            assert lint.find("DRAG001", "local", cls, member), removal
        elif removal.kind == "array-store":
            assert lint.find("DRAG001", "array-store", cls), removal

    # every applied assign-null has a DRAG002 finding
    _, _, _, report = run_advisor(name)
    for action in report.applied():
        if action.transformation != "assign-null":
            continue
        if "array liveness" in action.detail:
            # "... cleared slots of [('data', 'count')] in Cls"
            cls = action.detail.rsplit(" in ", 1)[1]
            assert lint.find("DRAG002", "array", cls), action.detail
        else:
            # "var = null inserted after Cls.method:line"
            var = action.detail.split(" = null", 1)[0]
            frame = action.detail.rsplit(" after ", 1)[1]
            cls, _, rest = frame.partition(".")
            method = rest.rsplit(":", 1)[0]
            assert lint.find("DRAG002", "local", cls, method, var), action.detail
