"""--profile mode: lint findings ranked by the drag the profiler
actually measured, agreeing with DragAnalysis site totals."""

import pytest

from repro.core.analyzer import DragAnalysis
from repro.core.logfile import read_log, write_log
from repro.core.profiler import profile_program
from repro.lint import lint_program
from repro.mjava.compiler import compile_program
from repro.runtime.library import link

# Two drag sources with very different weights: a large never-read
# buffer that lives to the end of main, and a small one dropped early.
SOURCE = """
class Main {
    public static void main(String[] args) {
        char[] big = new char[6000];
        big[0] = 'a';
        int x = big[0];
        char[] little = new char[40];
        little[0] = 'b';
        int y = little[0];
        churn();
        System.printInt(x + y);
    }
    static void churn() {
        for (int i = 0; i < 40; i = i + 1) { char[] junk = new char[64]; }
    }
}
"""


@pytest.fixture(scope="module")
def profiled():
    program_ast = link(SOURCE)
    compiled = compile_program(program_ast, main_class="Main")
    profile = profile_program(compiled, [], interval_bytes=2 * 1024)
    return program_ast, profile


def test_correlation_copies_site_drag_totals(profiled):
    program_ast, profile = profiled
    analysis = DragAnalysis(profile.records)
    result = lint_program(program_ast, "Main")
    result.correlate(analysis)
    correlated = [d for d in result.diagnostics if d.drag is not None]
    assert correlated, "expected at least one finding to match a profiled site"
    for diag in correlated:
        labels = [diag.span.label] + list(diag.extra.get("alt_labels", ()))
        totals = [
            analysis.by_site[label].total_drag
            for label in labels
            if label in analysis.by_site
        ]
        assert diag.drag == totals[0]
        assert diag.drag_share == pytest.approx(
            diag.drag / analysis.total_drag
        )


def test_correlation_ranks_findings_like_drag_analysis(profiled):
    program_ast, profile = profiled
    analysis = DragAnalysis(profile.records)
    result = lint_program(program_ast, "Main")
    result.correlate(analysis)
    # among findings of equal severity, measured drag decides the order
    ordered = result.sorted()
    for earlier, later in zip(ordered, ordered[1:]):
        if earlier.severity == later.severity:
            assert (earlier.drag or 0) >= (later.drag or 0)
    # and the per-site ordering matches DragAnalysis's own ranking
    correlated = [d for d in ordered if d.drag is not None]
    site_rank = {g.key: i for i, g in enumerate(analysis.sorted_sites())}

    def rank_of(diag):
        labels = [diag.span.label] + list(diag.extra.get("alt_labels", ()))
        return min(site_rank[l] for l in labels if l in site_rank)

    same_severity = [d for d in correlated if d.severity == "warning"]
    ranks = [rank_of(d) for d in same_severity]
    assert ranks == sorted(ranks)


def test_correlation_through_a_written_log_roundtrip(profiled, tmp_path):
    program_ast, profile = profiled
    path = tmp_path / "run.draglog"
    write_log(path, profile.records, end_time=profile.end_time)
    loaded = read_log(path)
    analysis = DragAnalysis(loaded.records)
    direct = DragAnalysis(profile.records)

    result = lint_program(program_ast, "Main")
    result.correlate(analysis, profile_path=str(path))
    assert result.profile_path == str(path)
    assert result.profile_total_drag == direct.total_drag
    for diag in result.diagnostics:
        if diag.drag is not None:
            label_totals = direct.by_site.get(diag.span.label)
            if label_totals is not None:
                assert diag.drag == label_totals.total_drag


def test_unprofiled_findings_keep_none_and_sort_last(profiled):
    program_ast, profile = profiled
    analysis = DragAnalysis(profile.records)
    result = lint_program(program_ast, "Main")
    result.correlate(analysis)
    ordered = result.sorted()
    by_severity = {}
    for diag in ordered:
        by_severity.setdefault(diag.severity, []).append(diag)
    for group in by_severity.values():
        seen_none = False
        for diag in group:
            if diag.drag is None:
                seen_none = True
            elif seen_none and diag.drag > 0:
                raise AssertionError(
                    "a measured finding sorted after an unmeasured one"
                )
