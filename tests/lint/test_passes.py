"""Pass manager: dependency ordering, single-run caching, and shared
analysis artifacts (compile once, call graph once, CFGs once)."""

import pytest

from repro.lint import LintError, lint_program
from repro.lint.diagnostics import LintResult
from repro.lint.passes import AnalysisContext, Pass, PassManager, standard_pass_manager
from repro.runtime.library import link

SIMPLE = """
class Main {
    public static void main(String[] args) {
        int[] tmp = new int[10];
        tmp[0] = 1;
        System.printInt(tmp[0]);
    }
}
"""


def make_context(source=SIMPLE, main_class="Main"):
    return AnalysisContext(link(source), main_class)


# -- dependency ordering -----------------------------------------------------


def test_schedule_runs_dependencies_first():
    manager = PassManager(make_context())
    trace = []
    manager.register(Pass("a", lambda ctx, res: trace.append("a")))
    manager.register(Pass("b", lambda ctx, res: trace.append("b"), requires=("a",)))
    manager.register(Pass("c", lambda ctx, res: trace.append("c"), requires=("b", "a")))
    order = manager.schedule(["c"])
    assert order == ["a", "b", "c"]
    manager.run("c", LintResult())
    assert trace == ["a", "b", "c"]


def test_schedule_detects_cycles():
    manager = PassManager(make_context())
    manager.register(Pass("a", lambda ctx, res: None, requires=("b",)))
    manager.register(Pass("b", lambda ctx, res: None, requires=("a",)))
    with pytest.raises(LintError, match="cycle"):
        manager.schedule(["a"])


def test_unknown_pass_and_double_registration_rejected():
    manager = PassManager(make_context())
    manager.register(Pass("a", lambda ctx, res: None))
    with pytest.raises(LintError, match="unknown"):
        manager.schedule(["nope"])
    with pytest.raises(LintError, match="twice"):
        manager.register(Pass("a", lambda ctx, res: None))


# -- caching -----------------------------------------------------------------


def test_shared_dependency_runs_exactly_once():
    manager = PassManager(make_context())
    runs = {"dep": 0}

    def dep(ctx, res):
        runs["dep"] += 1
        return "dep-result"

    manager.register(Pass("dep", dep))
    manager.register(Pass("user1", lambda ctx, res: None, requires=("dep",)))
    manager.register(Pass("user2", lambda ctx, res: None, requires=("dep",)))
    result = LintResult()
    manager.run("user1", result)
    manager.run("user2", result)
    manager.run("dep", result)
    assert runs["dep"] == 1
    assert manager.run_counts == {"dep": 1, "user1": 1, "user2": 1}
    assert manager.results["dep"] == "dep-result"


def test_standard_pipeline_builds_each_artifact_once():
    context = make_context()
    manager = standard_pass_manager(context)
    manager.run_all(LintResult())
    counts = context.build_counts
    # one compilation, one class table, one call graph, one exception
    # analysis, one interprocedural analysis — no matter how many rule
    # passes consumed them
    assert counts.get("compile") == 1
    assert counts.get("table") == 1
    assert counts.get("callgraph") == 1
    assert counts.get("exceptions", 0) <= 1
    assert counts.get("interproc") == 1
    # CFGs are cached per method: never more entries than methods built
    n_methods = sum(
        len(cls.methods) + (1 if cls.ctor else 0) + (1 if cls.clinit else 0)
        for cls in context.compiled.classes.values()
    )
    assert counts.get("cfg", 0) <= n_methods


def test_context_cfg_cache_returns_same_object():
    context = make_context()
    method = context.compiled.classes["Main"].methods["main"]
    assert context.cfg(method) is context.cfg(method)
    assert context.build_counts["cfg"] == 1


def test_rule_filter_skips_unrequested_rules():
    context = make_context()
    manager = standard_pass_manager(context)
    result = manager.run_all(LintResult(), rules=["DRAG004"])
    assert all(d.rule_id == "DRAG004" for d in result.diagnostics)


def test_lint_program_reuses_supplied_context():
    context = make_context()
    lint_program(context.program_ast, "Main", context=context)
    first_counts = dict(context.build_counts)
    lint_program(context.program_ast, "Main", context=context)
    # the expensive artifacts were not rebuilt by the second run
    assert context.build_counts["compile"] == first_counts["compile"] == 1
    assert context.build_counts["callgraph"] == first_counts["callgraph"] == 1
