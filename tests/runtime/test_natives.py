"""Native method edge cases: String intrinsics, arraycopy, bounds."""

import pytest

from repro.errors import MiniJavaException, VMError
from repro.runtime.interpreter import Interpreter
from tests.conftest import compile_app, run_main_body


def out(body, helpers=""):
    result, _ = run_main_body(body, helpers=helpers)
    return result.stdout


def test_substring_bounds_errors():
    body = """
    String s = "hello";
    try { s.substring(2, 9); } catch (IndexOutOfBoundsException e) { System.println("b1"); }
    try { s.substring(3, 1); } catch (IndexOutOfBoundsException e) { System.println("b2"); }
    try { s.substring(0 - 1, 2); } catch (IndexOutOfBoundsException e) { System.println("b3"); }
    System.println(s.substring(0, 5));
    System.println("[" + s.substring(2, 2) + "]");
    """
    assert out(body) == ["b1", "b2", "b3", "hello", "[]"]


def test_char_at_bounds():
    body = """
    try { "ab".charAt(5); } catch (IndexOutOfBoundsException e) { System.println("oob"); }
    try { "ab".charAt(0 - 1); } catch (IndexOutOfBoundsException e) { System.println("oob2"); }
    """
    assert out(body) == ["oob", "oob2"]


def test_index_of_missing_returns_minus_one():
    assert out('System.printInt("abc".indexOf("zz"));') == ["-1"]
    assert out('System.printInt("abc".indexOf(""));') == ["0"]


def test_string_equals_against_non_string():
    body = """
    Object o = new Object();
    System.println("" + "x".equals(o));
    System.println("" + "x".equals(null));
    """
    assert out(body) == ["false", "false"]


def test_string_hash_code_is_stable_and_equal_for_equal_strings():
    body = """
    String a = "he" + "llo";
    String b = "hel" + "lo";
    System.println("" + (a.hashCode() == b.hashCode()));
    System.println("" + (a.hashCode() == a.hashCode()));
    """
    assert out(body) == ["true", "true"]


def test_arraycopy_bounds_and_nulls():
    body = """
    int[] src = new int[4];
    int[] dst = new int[4];
    try { System.arraycopy(src, 0, dst, 2, 3); }
    catch (IndexOutOfBoundsException e) { System.println("range"); }
    try { System.arraycopy(null, 0, dst, 0, 1); }
    catch (NullPointerException e) { System.println("null"); }
    try { System.arraycopy(src, 0, new Object(), 0, 1); }
    catch (ClassCastException e) { System.println("cast"); }
    """
    assert out(body) == ["range", "null", "cast"]


def test_arraycopy_overlapping_regions():
    body = """
    char[] buf = new char[6];
    buf[0] = 'a'; buf[1] = 'b'; buf[2] = 'c';
    System.arraycopy(buf, 0, buf, 2, 3);
    System.println(String.valueOf(buf, 5));
    """
    assert out(body) == ["ababc"]


def test_string_value_of_count_bounds():
    body = """
    char[] cs = new char[3];
    try { String s = String.valueOf(cs, 9); }
    catch (IndexOutOfBoundsException e) { System.println("count"); }
    try { String s2 = String.valueOf(null, 0); }
    catch (NullPointerException e) { System.println("null"); }
    """
    assert out(body) == ["count", "null"]


def test_isqrt_of_negative_throws():
    body = """
    try { Math.isqrt(0 - 4); } catch (ArithmeticException e) { System.println("neg"); }
    System.printInt(Math.isqrt(0));
    """
    assert out(body) == ["neg", "0"]


def test_object_hash_code_is_identityish():
    body = """
    Object a = new Object();
    Object b = new Object();
    System.println("" + (a.hashCode() == a.hashCode()));
    System.println("" + (a.hashCode() == b.hashCode()));
    """
    assert out(body) == ["true", "false"]


def test_default_to_string_includes_class_and_handle():
    body = """
    Object o = new Object();
    String s = "" + o;
    System.println("" + (s.indexOf("Object@") == 0));
    """
    assert out(body) == ["true"]


def test_unbound_native_raises_vm_error():
    program = compile_app(
        "class Main { public static native void mystery(); "
        "public static void main(String[] args) { mystery(); } }"
    )
    with pytest.raises(VMError):
        Interpreter(program).run([])


def test_compare_to_total_order():
    body = """
    System.printInt("apple".compareTo("banana"));
    System.printInt("banana".compareTo("apple"));
    System.printInt("apple".compareTo("apple"));
    System.printInt("app".compareTo("apple"));
    """
    assert out(body) == ["-1", "1", "0", "-1"]
