"""Heap accounting: sizes, alignment, the byte clock, OOM behaviour."""

import pytest

from repro.bytecode.program import align
from repro.errors import MiniJavaException
from tests.conftest import compile_app, run_main_body, run_source
from repro.runtime.interpreter import Interpreter


def test_align_rounds_up_to_8():
    assert align(0) == 0
    assert align(1) == 8
    assert align(8) == 8
    assert align(9) == 16
    assert align(23) == 24


def test_instance_size_includes_header_and_alignment():
    source = """
    class Small { int a; }
    class Mixed { int a; char c; boolean b; Object r; }
    class Main { public static void main(String[] args) { } }
    """
    program = compile_app(source)
    # header 8 + int 4 = 12 -> 16
    assert program.classes["Small"].layout.instance_bytes == 16
    # header 8 + 4 + 2 + 1 + 4 = 19 -> 24
    assert program.classes["Mixed"].layout.instance_bytes == 24


def test_inherited_fields_count_in_size():
    source = """
    class Base { int a; int b; }
    class Derived extends Base { int c; }
    class Main { public static void main(String[] args) { } }
    """
    program = compile_app(source)
    # 8 + 12 = 20 -> 24
    assert program.classes["Derived"].layout.instance_bytes == 24


def test_array_sizes():
    result, interp = run_main_body(
        """
        int[] ints = new int[10];
        char[] chars = new char[10];
        boolean[] bools = new boolean[10];
        Object[] refs = new Object[10];
        keep(ints, chars, bools, refs);
        """,
        helpers="static void keep(int[] a, char[] b, boolean[] c, Object[] d) { }",
    )
    sizes = sorted(
        obj.size
        for obj in interp.heap.iter_objects()
        if hasattr(obj, "elem_desc") and obj.length == 10
    )
    # header 12 + elem*10, aligned to 8: bools 22->24, chars 32->32,
    # ints 52->56, refs 52->56
    assert sizes == [24, 32, 56, 56]


def test_clock_advances_by_allocation_size():
    source = """
    class Main {
        public static void main(String[] args) {
            int before = System.allocatedBytes();
            int[] a = new int[100];
            int after = System.allocatedBytes();
            System.printInt(after - before);
        }
    }
    """
    result, _ = run_source(source)
    assert result.stdout == [str(align(12 + 400))]


def test_gc_reclaims_when_heap_full():
    body = """
    for (int i = 0; i < 1000; i = i + 1) {
        char[] junk = new char[1000];
    }
    System.println("done");
    """
    # ~2MB of junk through a 64KB heap: must GC its way through.
    result, interp = run_main_body(body, max_heap=64 * 1024)
    assert result.stdout == ["done"]
    assert interp.heap.stats.gc_runs > 0


def test_out_of_memory_error_catchable():
    body = """
    try {
        Object[] hold = new Object[9000];
        for (int i = 0; i < 9000; i = i + 1) {
            hold[i] = new char[1000];
        }
        System.println("no oom");
    } catch (OutOfMemoryError e) {
        System.println("oom");
    }
    """
    result, _ = run_main_body(body, max_heap=64 * 1024)
    assert result.stdout == ["oom"]


def test_out_of_memory_uncatchable_reaches_host():
    with pytest.raises(MiniJavaException) as excinfo:
        run_main_body(
            """
            Object[] hold = new Object[9000];
            for (int i = 0; i < 9000; i = i + 1) { hold[i] = new char[1000]; }
            """,
            max_heap=64 * 1024,
        )
    assert excinfo.value.class_name == "OutOfMemoryError"


def test_live_bytes_tracks_reachable_after_gc():
    result, interp = run_main_body(
        """
        for (int i = 0; i < 50; i = i + 1) { char[] junk = new char[100]; }
        """
    )
    before = interp.heap.live_bytes
    interp.full_gc()
    after = interp.heap.live_bytes
    assert after < before
    # What survives: interned strings + Locale statics, all reachable.
    total = sum(obj.size for obj in interp.heap.iter_objects())
    assert total == after


def test_handles_are_unique_and_stable():
    _, interp = run_main_body("Object a = new Object(); Object b = new Object();")
    handles = [obj.handle for obj in interp.heap.iter_objects()]
    assert len(handles) == len(set(handles))
