"""Interpreter semantics: arithmetic, control flow, dispatch, exceptions."""

import pytest

from repro.errors import MiniJavaException
from tests.conftest import run_main_body, run_source


def out(body, helpers="", args=None):
    result, _ = run_main_body(body, helpers=helpers, args=args)
    return result.stdout


# -- arithmetic ---------------------------------------------------------------


def test_integer_arithmetic():
    assert out("System.printInt(2 + 3 * 4 - 1);") == ["13"]


def test_division_truncates_toward_zero():
    assert out("System.printInt(7 / 2);") == ["3"]
    assert out("System.printInt((-7) / 2);") == ["-3"]
    assert out("System.printInt(7 / (-2));") == ["-3"]


def test_modulo_has_java_sign():
    assert out("System.printInt(7 % 3);") == ["1"]
    assert out("System.printInt((-7) % 3);") == ["-1"]
    assert out("System.printInt(7 % (-3));") == ["1"]


def test_division_by_zero_throws():
    result, _ = run_main_body(
        "try { int x = 1 / 0; } catch (ArithmeticException e) { System.println(e.getMessage()); }"
    )
    assert result.stdout == ["/ by zero"]


def test_negation_and_unary_minus():
    assert out("int x = 5; System.printInt(-x);") == ["-5"]


def test_char_arithmetic_and_cast():
    assert out("char c = 'a'; System.printInt(c + 1);") == ["98"]
    assert out("char c = (char) 98; System.println(\"\" + c);") == ["b"]


def test_cast_char_wraps():
    assert out("System.printInt((char) 65601);") == ["65"]


# -- control flow -------------------------------------------------------------


def test_if_else_chain():
    body = """
    int x = 7;
    if (x > 10) { System.println("big"); }
    else if (x > 5) { System.println("mid"); }
    else { System.println("small"); }
    """
    assert out(body) == ["mid"]


def test_while_and_break_continue():
    body = """
    int i = 0;
    int sum = 0;
    while (true) {
        i = i + 1;
        if (i > 10) { break; }
        if (i % 2 == 0) { continue; }
        sum = sum + i;
    }
    System.printInt(sum);
    """
    assert out(body) == ["25"]


def test_for_loop_with_continue_runs_update():
    body = """
    int sum = 0;
    for (int i = 0; i < 5; i = i + 1) {
        if (i == 2) { continue; }
        sum = sum + i;
    }
    System.printInt(sum);
    """
    assert out(body) == ["8"]


def test_nested_loops():
    body = """
    int count = 0;
    for (int i = 0; i < 3; i = i + 1) {
        for (int j = 0; j < 4; j = j + 1) {
            if (j == 2) { break; }
            count = count + 1;
        }
    }
    System.printInt(count);
    """
    assert out(body) == ["6"]


def test_short_circuit_and():
    body = """
    String s = null;
    if (s != null && s.length() > 0) { System.println("nonempty"); }
    else { System.println("empty"); }
    """
    assert out(body) == ["empty"]


def test_short_circuit_or():
    body = """
    int[] calls = new int[1];
    boolean b = true || bump(calls);
    System.printInt(calls[0]);
    """
    helpers = "static boolean bump(int[] c) { c[0] = c[0] + 1; return true; }"
    assert out(body, helpers) == ["0"]


# -- objects, fields, dispatch --------------------------------------------------


def test_instance_fields_and_methods():
    source = """
    class Counter {
        private int value;
        Counter(int start) { value = start; }
        public void inc() { value = value + 1; }
        public int get() { return value; }
    }
    class Main {
        public static void main(String[] args) {
            Counter c = new Counter(5);
            c.inc();
            c.inc();
            System.printInt(c.get());
        }
    }
    """
    result, _ = run_source(source)
    assert result.stdout == ["7"]


def test_virtual_dispatch_and_super():
    source = """
    class Animal {
        public String speak() { return "..."; }
        public String describe() { return "animal says " + this.speak(); }
    }
    class Dog extends Animal {
        public String speak() { return "woof"; }
        public String describe() { return super.describe() + "!"; }
    }
    class Main {
        public static void main(String[] args) {
            Animal a = new Dog();
            System.println(a.describe());
        }
    }
    """
    result, _ = run_source(source)
    assert result.stdout == ["animal says woof!"]


def test_constructor_chain_and_field_inits():
    source = """
    class Base {
        int x = 10;
        Base(int add) { x = x + add; }
    }
    class Derived extends Base {
        int y = 100;
        Derived() { super(5); y = y + x; }
    }
    class Main {
        public static void main(String[] args) {
            Derived d = new Derived();
            System.printInt(d.x);
            System.printInt(d.y);
        }
    }
    """
    result, _ = run_source(source)
    assert result.stdout == ["15", "115"]


def test_static_fields_and_clinit():
    source = """
    class Config {
        static int counter = 3;
        public static final String NAME = "cfg";
        static int bump() { counter = counter + 1; return counter; }
    }
    class Main {
        public static void main(String[] args) {
            System.printInt(Config.bump());
            System.printInt(Config.bump());
            System.println(Config.NAME);
        }
    }
    """
    result, _ = run_source(source)
    assert result.stdout == ["4", "5", "cfg"]


def test_instanceof_and_checkcast():
    source = """
    class A { }
    class B extends A { }
    class Main {
        public static void main(String[] args) {
            Object o = new B();
            System.println("" + (o instanceof A));
            System.println("" + (o instanceof B));
            A a = (A) o;
            System.println("" + (a instanceof Object));
            System.println("" + (null instanceof A));
        }
    }
    """
    result, _ = run_source(source)
    assert result.stdout == ["true", "true", "true", "false"]


def test_bad_cast_throws_class_cast_exception():
    source = """
    class A { }
    class B { }
    class Main {
        public static void main(String[] args) {
            Object o = new A();
            try { B b = (B) o; }
            catch (ClassCastException e) { System.println("ccx"); }
        }
    }
    """
    result, _ = run_source(source)
    assert result.stdout == ["ccx"]


# -- arrays ---------------------------------------------------------------------


def test_array_create_store_load_length():
    body = """
    int[] a = new int[5];
    a[0] = 10;
    a[4] = 20;
    System.printInt(a[0] + a[4]);
    System.printInt(a.length);
    System.printInt(a[2]);
    """
    assert out(body) == ["30", "5", "0"]


def test_array_of_references_defaults_to_null():
    body = """
    Object[] objs = new Object[3];
    System.println("" + (objs[1] == null));
    """
    assert out(body) == ["true"]


def test_array_index_out_of_bounds():
    body = """
    int[] a = new int[2];
    try { a[5] = 1; } catch (IndexOutOfBoundsException e) { System.println("oob"); }
    try { int x = a[-1]; } catch (IndexOutOfBoundsException e) { System.println("oob2"); }
    """
    assert out(body) == ["oob", "oob2"]


def test_array_covariance_checkcast():
    source = """
    class A { }
    class B extends A { }
    class Main {
        public static void main(String[] args) {
            Object o = new B[3];
            A[] arr = (A[]) o;
            System.printInt(arr.length);
        }
    }
    """
    result, _ = run_source(source)
    assert result.stdout == ["3"]


# -- strings ---------------------------------------------------------------------


def test_string_concat_of_everything():
    body = """
    System.println("n=" + 42 + " c=" + 'x' + " b=" + true + " o=" + null);
    """
    assert out(body) == ["n=42 c=x b=true o=null"]


def test_string_equals_vs_identity():
    body = """
    String a = "hello";
    String b = "hel" + "lo";
    System.println("" + a.equals(b));
    System.println("" + (a == b));
    """
    assert out(body) == ["true", "false"]


def test_string_literals_are_interned():
    body = """
    String a = "same";
    String b = "same";
    System.println("" + (a == b));
    """
    assert out(body) == ["true"]


def test_user_tostring_used_in_concat():
    source = """
    class Point {
        int x;
        Point(int x) { this.x = x; }
        public String toString() { return "P(" + x + ")"; }
    }
    class Main {
        public static void main(String[] args) {
            Point p = new Point(3);
            System.println("point: " + p);
        }
    }
    """
    result, _ = run_source(source)
    assert result.stdout == ["point: P(3)"]


def test_string_methods():
    body = """
    String s = "hello world";
    System.printInt(s.length());
    System.println(s.substring(6, 11));
    System.printInt(s.indexOf("world"));
    System.println("" + s.charAt(4));
    """
    assert out(body) == ["11", "world", "6", "o"]


# -- exceptions ---------------------------------------------------------------------


def test_throw_and_catch_subtype():
    body = """
    try { throw new NullPointerException("npe"); }
    catch (RuntimeException e) { System.println("caught " + e.getMessage()); }
    """
    assert out(body) == ["caught npe"]


def test_catch_order_first_match_wins():
    body = """
    try { throw new IndexOutOfBoundsException("x"); }
    catch (IndexOutOfBoundsException e) { System.println("specific"); }
    catch (Exception e) { System.println("generic"); }
    """
    assert out(body) == ["specific"]


def test_exception_propagates_through_frames():
    source = """
    class Main {
        public static void main(String[] args) {
            try { a(); } catch (RuntimeException e) { System.println("top: " + e.getMessage()); }
        }
        static void a() { b(); }
        static void b() { throw new RuntimeException("deep"); }
    }
    """
    result, _ = run_source(source)
    assert result.stdout == ["top: deep"]


def test_uncaught_exception_reaches_host():
    with pytest.raises(MiniJavaException) as excinfo:
        run_main_body('throw new RuntimeException("boom");')
    assert excinfo.value.class_name == "RuntimeException"
    assert excinfo.value.message_text == "boom"


def test_null_pointer_on_field_and_call():
    body = """
    try { Object o = null; o.hashCode(); }
    catch (NullPointerException e) { System.println("npe1"); }
    """
    assert out(body) == ["npe1"]


def test_finally_like_monitor_release_on_throw():
    source = """
    class Main {
        static Object lock = new Object();
        public static void main(String[] args) {
            try { locked(); } catch (RuntimeException e) { System.println("out"); }
            synchronized (lock) { System.println("reacquired"); }
        }
        static void locked() {
            synchronized (lock) { throw new RuntimeException("inside"); }
        }
    }
    """
    result, interp = run_source(source)
    assert result.stdout == ["out", "reacquired"]
    lock = interp.statics["Main"]["lock"]
    assert lock.monitor_depth == 0


def test_rethrow_from_catch():
    body = """
    try {
        try { throw new RuntimeException("a"); }
        catch (RuntimeException e) { throw new RuntimeException("b"); }
    } catch (RuntimeException e2) { System.println(e2.getMessage()); }
    """
    assert out(body) == ["b"]


# -- args, recursion, misc -------------------------------------------------------------


def test_main_args():
    result, _ = run_main_body(
        "System.printInt(args.length); System.println(args[1]);", args=["x", "y"]
    )
    assert result.stdout == ["2", "y"]


def test_recursion():
    helpers = "static int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }"
    assert out("System.printInt(fib(15));", helpers) == ["610"]


def test_integer_parse_int():
    body = """
    System.printInt(Integer.parseInt("123"));
    System.printInt(Integer.parseInt("-45"));
    try { Integer.parseInt("x9"); } catch (NumberFormatException e) { System.println("nfe"); }
    """
    assert out(body) == ["123", "-45", "nfe"]


def test_program_output_is_deterministic():
    source = """
    class Main {
        public static void main(String[] args) {
            Random r = new Random(7);
            for (int i = 0; i < 5; i = i + 1) { System.printInt(r.nextInt(100)); }
        }
    }
    """
    first, _ = run_source(source)
    second, _ = run_source(source)
    assert first.stdout == second.stdout
