"""Differential harness: the compiled engine must be bit-identical to
the baseline interpreter — stdout, instruction counts, byte clock, heap
statistics, and (profiled) the full record/sample streams and the v1/v2
log bytes — on every registered benchmark and example program.

This suite is the gate for the layered execution engine: any dispatch
optimization that shifts a safepoint, reorders a use event, or changes
an exception message fails here.
"""

from pathlib import Path

import pytest

from repro.core.profiler import HeapProfiler
from repro.benchmarks.registry import all_benchmarks
from repro.benchmarks.runner import compile_benchmark
from repro.mjava.compiler import compile_program
from repro.runtime.compiled import CompiledInterpreter
from repro.runtime.engine import ENGINES, create_vm
from repro.runtime.interpreter import Interpreter
from repro.runtime.library import link
from repro.stream.sinks import LogWriterSink, open_log_writer

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples" / "programs"

# Example programs: (filename, main class, args).
EXAMPLE_PROGRAMS = [
    ("wordcount.mj", "WordCount", ["12"]),
]

BENCHMARK_NAMES = sorted(all_benchmarks())

# Wall-clock fields are outside the deterministic core (they never feed
# the byte clock or the profile) and cannot be equal across two runs.
NONDETERMINISTIC_STATS = {"gc_pause_seconds"}


def _stats_dict(stats):
    return {
        f: getattr(stats, f)
        for f in stats.__slots__
        if f not in NONDETERMINISTIC_STATS
    }


def _sample_dicts(samples):
    return [
        {"time": s.time, "reachable": s.reachable_bytes, "objects": s.object_count}
        for s in samples
    ]


def _run(engine_cls, program, args, max_heap=None, profiled=False, interval=65536):
    profiler = HeapProfiler(interval_bytes=interval) if profiled else None
    vm = engine_cls(program, max_heap=max_heap, profiler=profiler)
    result = vm.run(list(args))
    return result, profiler


def _assert_results_equal(base, comp):
    assert comp.stdout == base.stdout
    assert comp.instructions == base.instructions
    assert comp.clock == base.clock
    assert comp.finalizer_errors == base.finalizer_errors
    assert _stats_dict(comp.heap_stats) == _stats_dict(base.heap_stats)


def _assert_profiles_equal(base_prof, comp_prof):
    assert [r.to_dict() for r in comp_prof.records] == [
        r.to_dict() for r in base_prof.records
    ]
    assert _sample_dicts(comp_prof.samples) == _sample_dicts(base_prof.samples)
    assert comp_prof.record_count == base_prof.record_count
    assert comp_prof.sample_count == base_prof.sample_count
    assert comp_prof.finalizer_errors == base_prof.finalizer_errors


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_unprofiled_equivalence(name):
    bench = all_benchmarks()[name]
    args = bench.args_for("primary")
    base, _ = _run(
        Interpreter, compile_benchmark(bench, revised=False), args, bench.max_heap
    )
    comp, _ = _run(
        CompiledInterpreter,
        compile_benchmark(bench, revised=False),
        args,
        bench.max_heap,
    )
    _assert_results_equal(base, comp)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_profiled_equivalence(name):
    bench = all_benchmarks()[name]
    args = bench.args_for("primary")
    # Each run compiles its own program: VM-internal allocation sites
    # (make_throwable) are registered lazily in the program's site
    # table, so sharing one program across runs would skew site ids.
    base, base_prof = _run(
        Interpreter,
        compile_benchmark(bench, revised=False),
        args,
        bench.max_heap,
        profiled=True,
    )
    comp, comp_prof = _run(
        CompiledInterpreter,
        compile_benchmark(bench, revised=False),
        args,
        bench.max_heap,
        profiled=True,
    )
    _assert_results_equal(base, comp)
    _assert_profiles_equal(base_prof, comp_prof)


# ---------------------------------------------------------------------------
# Example programs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("filename,main_class,args", EXAMPLE_PROGRAMS)
def test_example_program_equivalence(filename, main_class, args):
    source = (EXAMPLES_DIR / filename).read_text(encoding="utf-8")

    def fresh_program():
        return compile_program(link(source), main_class=main_class)

    base, base_prof = _run(Interpreter, fresh_program(), args, profiled=True)
    comp, comp_prof = _run(CompiledInterpreter, fresh_program(), args, profiled=True)
    _assert_results_equal(base, comp)
    _assert_profiles_equal(base_prof, comp_prof)


def test_all_example_programs_are_covered():
    """Every .mj under examples/programs must be in EXAMPLE_PROGRAMS."""
    on_disk = sorted(p.name for p in EXAMPLES_DIR.glob("*.mj"))
    covered = sorted(name for name, _, _ in EXAMPLE_PROGRAMS)
    assert on_disk == covered


# ---------------------------------------------------------------------------
# Log byte-identity: both engines must produce the same v1 and v2 files
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["db", "euler"])
@pytest.mark.parametrize("fmt,suffix", [("v1", ".draglog"), ("v2", ".dlog2")])
def test_log_bytes_identical(tmp_path, name, fmt, suffix):
    bench = all_benchmarks()[name]
    args = bench.args_for("primary")
    paths = {}
    for engine in ("baseline", "compiled"):
        path = tmp_path / f"{name}-{engine}{suffix}"
        sink = LogWriterSink(open_log_writer(path, fmt=fmt))
        profiler = HeapProfiler(interval_bytes=65536, sink=sink)
        vm = create_vm(
            compile_benchmark(bench, revised=False),
            engine=engine,
            max_heap=bench.max_heap,
            profiler=profiler,
        )
        vm.run(list(args))
        sink.close()
        paths[engine] = path
    assert paths["baseline"].read_bytes() == paths["compiled"].read_bytes()


def test_engines_registry_covers_this_suite():
    """If a third engine is ever registered it must be added here."""
    assert set(ENGINES) == {"baseline", "compiled"}
