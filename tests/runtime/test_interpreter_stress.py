"""Interpreter stress and corner cases: deep calls, reentrancy, OOM in
constructors, finalizers that allocate, interning under GC."""

import pytest

from repro.errors import MiniJavaException
from tests.conftest import run_main_body, run_source


def test_deep_recursion_thousands_of_frames():
    helpers = "static int down(int n) { if (n == 0) { return 0; } return 1 + down(n - 1); }"
    result, _ = run_main_body("System.printInt(down(5000));", helpers=helpers)
    assert result.stdout == ["5000"]


def test_reentrant_monitor():
    source = """
    class Main {
        static Object lock = new Object();
        public static void main(String[] args) {
            synchronized (lock) {
                synchronized (lock) {
                    System.println("nested");
                }
            }
        }
    }
    """
    result, interp = run_source(source)
    assert result.stdout == ["nested"]
    assert interp.statics["Main"]["lock"].monitor_depth == 0


def test_oom_inside_constructor_unwinds_cleanly():
    source = """
    class Hungry {
        char[] feast;
        Hungry() { feast = new char[200000]; }
    }
    class Main {
        public static void main(String[] args) {
            try { Hungry h = new Hungry(); System.println("fed"); }
            catch (OutOfMemoryError e) { System.println("starved"); }
            System.println("alive");
        }
    }
    """
    result, _ = run_source(source, max_heap=64 * 1024)
    assert result.stdout == ["starved", "alive"]


def test_finalizer_that_allocates():
    source = """
    class Res {
        static int count;
        public void finalize() {
            char[] epitaph = new char[100];
            count = count + 1;
        }
    }
    class Main {
        public static void main(String[] args) {
            for (int i = 0; i < 5; i = i + 1) { Res r = new Res(); }
        }
    }
    """
    result, interp = run_source(source)
    interp.deep_gc()
    assert interp.statics["Res"]["count"] == 5


def test_interned_strings_survive_gc():
    source = """
    class Main {
        public static void main(String[] args) {
            String first = "constant";
            for (int i = 0; i < 200; i = i + 1) { char[] junk = new char[500]; }
            System.gc();
            String second = "constant";
            System.println("" + (first == second));
        }
    }
    """
    result, _ = run_source(source, max_heap=64 * 1024)
    assert result.stdout == ["true"]


def test_exception_in_clinit_escapes():
    source = """
    class Broken {
        static int x = explode();
        static int explode() { throw new RuntimeException("clinit"); }
    }
    class Main { public static void main(String[] args) { } }
    """
    with pytest.raises(MiniJavaException) as excinfo:
        run_source(source)
    assert excinfo.value.message_text == "clinit"


def test_instance_field_init_runs_per_instance():
    source = """
    class Token { char[] buf = new char[64]; }
    class Main {
        public static void main(String[] args) {
            Token a = new Token();
            Token b = new Token();
            System.println("" + (a.buf == b.buf));
        }
    }
    """
    result, _ = run_source(source)
    assert result.stdout == ["false"]


def test_virtual_dispatch_during_superclass_ctor():
    """Like Java, a superclass ctor calling an overridden method hits
    the subclass override (with subclass fields still defaulted)."""
    source = """
    class Base {
        Base() { this.report(); }
        void report() { System.println("base"); }
    }
    class Derived extends Base {
        int x = 7;
        Derived() { super(); this.report(); }
        void report() { System.printInt(x); }
    }
    class Main {
        public static void main(String[] args) { Derived d = new Derived(); }
    }
    """
    result, _ = run_source(source)
    assert result.stdout == ["0", "7"]


def test_large_vector_growth_under_pressure():
    source = """
    class Main {
        public static void main(String[] args) {
            Vector v = new Vector(1);
            for (int i = 0; i < 500; i = i + 1) { v.add("e" + i); }
            System.printInt(v.size());
            System.println((String) v.get(499));
        }
    }
    """
    result, _ = run_source(source, max_heap=512 * 1024)
    assert result.stdout == ["500", "e499"]


def test_call_static_host_api():
    source = """
    class Calc {
        static int twice(int x) { return x * 2; }
    }
    class Main { public static void main(String[] args) { } }
    """
    _, interp = run_source(source)
    assert interp.call_static("Calc", "twice", [21]) == 42


def test_stdout_order_preserved_across_gc():
    body = """
    for (int i = 0; i < 10; i = i + 1) {
        System.printInt(i);
        char[] junk = new char[5000];
    }
    """
    result, _ = run_main_body(body, max_heap=32 * 1024)
    assert result.stdout == [str(i) for i in range(10)]
