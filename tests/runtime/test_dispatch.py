"""The closure compiler and engine facade.

The headline property: when no profiler is attached, the compiled
handlers contain *zero* profiler call sites — not disabled hooks, none.
That is verifiable by introspection: no handler closes over ``on_use``
and none references profiler machinery by name.
"""

import pytest

from repro.errors import VMError
from repro.core.profiler import HeapProfiler
from repro.mjava.compiler import compile_program
from repro.runtime.compiled import CompiledInterpreter
from repro.runtime.engine import (
    DEFAULT_ENGINE,
    ENGINES,
    Engine,
    VMConfig,
    create_vm,
    run_program,
)
from repro.runtime.hooks import NullHooks, ProfilerHooks, hooks_for, resolve_on_use
from repro.runtime.interpreter import Interpreter
from repro.runtime.library import link

# Exercises every hooked use-op: getfield/putfield, array load/store,
# arraylength, invokevirtual, monitorenter/exit — plus allocation,
# branching, statics, exceptions, and string building.
SOURCE = """
class Box {
    int value;
    Box(int v) { value = v; }
    int get() { return value; }
}
class Main {
    static int total;
    public static void main(String[] args) {
        int[] nums = new int[4];
        for (int i = 0; i < nums.length; i = i + 1) { nums[i] = i * 3; }
        Box box = new Box(nums[2]);
        synchronized (box) { total = box.get(); }
        try { throw new RuntimeException("boom"); }
        catch (RuntimeException e) { total = total + 1; }
        System.println("total=" + total);
    }
}
"""

HOOK_NAMES = {"profiler", "note_use", "on_alloc", "on_use"}

# Telemetry machinery must likewise never leak into handlers compiled
# with telemetry off: no DispatchStats cell, no counter attributes.
TELEMETRY_NAMES = {"stats", "telemetry", "ic_hits", "ic_misses", "registry", "tracer"}


def _build(profiler=None, telemetry=None):
    program = compile_program(link(SOURCE), main_class="Main")
    vm = CompiledInterpreter(program, profiler=profiler, telemetry=telemetry)
    result = vm.run([])
    return vm, result


def _all_handlers(vm):
    for handlers in vm._code_cache.values():
        yield from handlers


class TestHookSpecialization:
    def test_unprofiled_handlers_have_zero_hook_sites(self):
        vm, result = _build()
        assert result.stdout == ["total=7"]
        assert vm._code_cache, "nothing was translated"
        for handler in _all_handlers(vm):
            code = handler.__code__
            assert "on_use" not in code.co_freevars, handler
            assert not HOOK_NAMES & set(code.co_names), handler

    def test_untraced_handlers_have_zero_telemetry_sites(self):
        """Telemetry off (the default) must leave handlers exactly as
        hook-free as profiler-off does: no stats cell, no counter names."""
        vm, result = _build()
        assert result.stdout == ["total=7"]
        for handler in _all_handlers(vm):
            code = handler.__code__
            assert "stats" not in code.co_freevars, handler
            assert not TELEMETRY_NAMES & set(code.co_names), handler
            assert not TELEMETRY_NAMES & set(code.co_freevars), handler

    def test_traced_invokev_handlers_bind_stats(self):
        from repro.obs import Telemetry

        telemetry = Telemetry()
        vm, result = _build(telemetry=telemetry)
        assert result.stdout == ["total=7"]
        bound = [
            h for h in _all_handlers(vm) if "stats" in h.__code__.co_freevars
        ]
        assert bound, "no handler bound the DispatchStats counters"
        for handler in bound:
            idx = handler.__code__.co_freevars.index("stats")
            assert handler.__closure__[idx].cell_contents is telemetry.dispatch_stats

    def test_profiled_use_handlers_bind_on_use(self):
        vm, _ = _build(profiler=HeapProfiler(interval_bytes=1 << 20))
        bound = [
            h for h in _all_handlers(vm) if "on_use" in h.__code__.co_freevars
        ]
        assert bound, "no handler bound the on_use hook"
        # The bound cell must be the profiler method itself, not a shim.
        for handler in bound:
            idx = handler.__code__.co_freevars.index("on_use")
            cell = handler.__closure__[idx].cell_contents
            assert cell == vm.profiler.on_use

    def test_hooks_for(self):
        null = hooks_for(None)
        assert isinstance(null, NullHooks)
        assert not null.active
        assert resolve_on_use(null) is None

        profiler = HeapProfiler(interval_bytes=1 << 20)
        active = hooks_for(profiler)
        assert isinstance(active, ProfilerHooks)
        assert active.active
        assert resolve_on_use(active) == profiler.on_use


class TestTranslation:
    def test_translation_is_lazy_and_cached(self):
        program = compile_program(link(SOURCE), main_class="Main")
        vm = CompiledInterpreter(program)
        assert not vm._code_cache
        vm.run([])
        main = program.lookup_method("Main", "main")
        assert main in vm._code_cache
        assert vm.handlers_for(main) is vm._code_cache[main]
        assert len(vm._code_cache[main]) == len(main.code)


class TestEngineFacade:
    def test_engine_selection(self):
        program = compile_program(link(SOURCE), main_class="Main")
        assert type(create_vm(program, engine="baseline")) is Interpreter
        assert type(create_vm(program, engine="compiled")) is CompiledInterpreter

    def test_default_engine(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert VMConfig().engine == DEFAULT_ENGINE == "baseline"

    def test_env_var_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "compiled")
        program = compile_program(link(SOURCE), main_class="Main")
        assert type(create_vm(program)) is CompiledInterpreter

    def test_env_var_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        with pytest.raises(VMError, match="turbo"):
            VMConfig()

    def test_config_rejects_unknown_engine(self):
        with pytest.raises(VMError, match="warp"):
            VMConfig(engine="warp")

    def test_config_replace(self):
        config = VMConfig(engine="baseline", max_heap=1024)
        replaced = config.replace(engine="compiled")
        assert replaced.engine == "compiled"
        assert replaced.max_heap == 1024
        assert config.engine == "baseline"  # original untouched

    def test_engine_run(self):
        program = compile_program(link(SOURCE), main_class="Main")
        engine = Engine(program, engine="compiled")
        result = engine.run([])
        assert result.stdout == ["total=7"]
        assert engine.vm is not None
        assert engine.vm.heap.stats.objects_allocated > 0

    def test_run_program_one_call(self):
        program = compile_program(link(SOURCE), main_class="Main")
        result = run_program(program, engine="compiled")
        assert result.stdout == ["total=7"]

    def test_registry(self):
        assert ENGINES["baseline"] is Interpreter
        assert ENGINES["compiled"] is CompiledInterpreter


class TestFinalizerErrors:
    FINALIZER_SOURCE = """
    class Leaky {
        void finalize() { throw new RuntimeException("finalizer boom"); }
    }
    class Main {
        public static void main(String[] args) {
            for (int i = 0; i < 50; i = i + 1) {
                Leaky l = new Leaky();
                char[] pressure = new char[512];
                pressure[0] = 'x';
            }
            System.println("done");
        }
    }
    """

    # Finalizers run during *deep GC* (collect -> finalize -> collect),
    # which only the profiler triggers — so the nonzero cases are all
    # profiled runs.

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_profiled_run_counts_swallowed_finalizer_exceptions(self, engine):
        from repro.core.profiler import profile_source

        result = profile_source(
            self.FINALIZER_SOURCE, "Main", interval_bytes=4096, engine=engine
        )
        assert result.run_result.stdout == ["done"]
        assert result.finalizer_errors == 50
        assert result.run_result.finalizer_errors == 50
        assert result.profiler.finalizer_errors == 50

    def test_clean_run_has_zero(self):
        program = compile_program(link(SOURCE), main_class="Main")
        assert run_program(program).finalizer_errors == 0
