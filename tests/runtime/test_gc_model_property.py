"""Model-based property test for the collector: on random object
graphs, a collection retains exactly the objects reachable from the
roots (verified independently with networkx)."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode.program import CompiledProgram
from repro.runtime.gc import MarkSweepCollector
from repro.runtime.generational import GenerationalCollector
from repro.runtime.heap import Heap
from repro.runtime.objects import ArrayObject


def build_heap(n_objects, edges, collector_cls):
    """A heap of ref-arrays wired into the given digraph."""
    program = CompiledProgram()
    heap = Heap()
    if collector_cls is GenerationalCollector:
        collector = GenerationalCollector(heap, program, young_threshold=10 ** 9)
    else:
        collector = MarkSweepCollector(heap, program)
    objects = [heap.new_array("ref", "Object", 4) for _ in range(n_objects)]
    for src, dst in edges:
        arr = objects[src]
        # widen if needed
        slot = next((i for i, v in enumerate(arr.data) if v is None), None)
        if slot is None:
            arr.data.append(None)
            slot = len(arr.data) - 1
        arr.data[slot] = objects[dst]
        if heap.barrier is not None:
            heap.barrier(arr, objects[dst])
    return heap, collector, objects


graph_strategy = st.tuples(
    st.integers(min_value=1, max_value=24),  # node count
    st.data(),
)


@settings(max_examples=120, deadline=None)
@given(graph_strategy)
def test_mark_sweep_retains_exactly_reachable(params):
    n, data = params
    edges = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=40,
        )
    )
    root_indices = data.draw(
        st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n)
    )
    heap, collector, objects = build_heap(n, edges, MarkSweepCollector)
    roots = [objects[i] for i in sorted(root_indices)]
    collector.collect(roots)

    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    expected = set(root_indices)
    for r in root_indices:
        expected |= nx.descendants(graph, r)

    surviving = {
        i for i, obj in enumerate(objects) if obj.handle in heap.objects
    }
    assert surviving == expected


@settings(max_examples=60, deadline=None)
@given(graph_strategy)
def test_generational_major_matches_mark_sweep(params):
    n, data = params
    edges = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=30,
        )
    )
    root_indices = data.draw(
        st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n)
    )
    heap, collector, objects = build_heap(n, edges, GenerationalCollector)
    roots = [objects[i] for i in sorted(root_indices)]
    # a minor collection first (promotes survivors), then a major one
    collector.collect_minor(roots)
    collector.collect_major(roots)

    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    expected = set(root_indices)
    for r in root_indices:
        expected |= nx.descendants(graph, r)

    surviving = {i for i, obj in enumerate(objects) if obj.handle in heap.objects}
    assert surviving == expected


@settings(max_examples=60, deadline=None)
@given(graph_strategy)
def test_minor_collection_never_frees_reachable(params):
    """A minor collection may retain garbage (floating old objects) but
    must never free anything reachable."""
    n, data = params
    edges = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=30,
        )
    )
    root_indices = data.draw(
        st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n)
    )
    heap, collector, objects = build_heap(n, edges, GenerationalCollector)
    roots = [objects[i] for i in sorted(root_indices)]
    collector.collect_minor(roots)

    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    expected = set(root_indices)
    for r in root_indices:
        expected |= nx.descendants(graph, r)

    surviving = {i for i, obj in enumerate(objects) if obj.handle in heap.objects}
    assert expected <= surviving


def test_live_bytes_invariant_after_collection():
    heap, collector, objects = build_heap(10, [(0, 1), (1, 2)], MarkSweepCollector)
    collector.collect([objects[0]])
    assert heap.live_bytes == sum(o.size for o in heap.objects.values())
