"""Liveness-aided GC roots (Agesen et al., cited in §5.1): dead locals
are not roots, so dragged objects die without source rewrites."""

from repro.core import HeapProfiler
from repro.runtime.interpreter import Interpreter
from tests.conftest import compile_app

SOURCE = """
class Main {
    public static void main(String[] args) {
        cycle();
    }
    static void cycle() {
        char[] buffer = new char[20000];
        buffer[0] = 'x';
        // buffer is dead from here on, but still held by the slot
        churn();
        churn();
    }
    static void churn() {
        for (int i = 0; i < 100; i = i + 1) { char[] junk = new char[100]; }
    }
}
"""


def profile(liveness_roots):
    program = compile_app(SOURCE)
    profiler = HeapProfiler(interval_bytes=4 * 1024)
    interp = Interpreter(program, profiler=profiler, liveness_roots=liveness_roots)
    result = interp.run([])
    return profiler, result


def buffer_record(profiler):
    return [r for r in profiler.records if r.size > 30000][0]


def test_dead_local_collected_early_with_liveness_roots():
    plain, _ = profile(liveness_roots=False)
    lively, _ = profile(liveness_roots=True)
    plain_buffer = buffer_record(plain)
    live_buffer = buffer_record(lively)
    # Same lifetime start/use either way...
    assert plain_buffer.creation_time == live_buffer.creation_time
    # ...but with liveness-aided roots the buffer is collected while
    # cycle() is still on the stack, cutting its drag sharply.
    assert live_buffer.collection_time < plain_buffer.collection_time
    assert live_buffer.drag_time < plain_buffer.drag_time * 0.6


def test_program_behaviour_unchanged():
    program = compile_app(SOURCE)
    plain = Interpreter(program).run([])
    program2 = compile_app(SOURCE)
    lively = Interpreter(program2, liveness_roots=True).run([])
    assert plain.stdout == lively.stdout


def test_live_locals_survive_liveness_gc():
    source = """
    class Main {
        public static void main(String[] args) {
            char[] keep = new char[5000];
            churn();
            keep[0] = 'x';
            System.println("" + keep[0]);
        }
        static void churn() {
            for (int i = 0; i < 200; i = i + 1) { char[] junk = new char[100]; }
        }
    }
    """
    program = compile_app(source)
    profiler = HeapProfiler(interval_bytes=2 * 1024)
    interp = Interpreter(program, profiler=profiler, liveness_roots=True)
    result = interp.run([])
    assert result.stdout == ["x"]
