"""Generational collector: minor/major cycles, write barrier, promotion."""

from repro.runtime.generational import GenerationalCollector
from repro.runtime.interpreter import Interpreter
from tests.conftest import compile_app


def gen_factory(young_threshold=8 * 1024, promote_age=2):
    def factory(heap, program):
        return GenerationalCollector(
            heap, program, young_threshold=young_threshold, promote_age=promote_age
        )

    return factory


def run_gen(source, args=None, young_threshold=8 * 1024, max_heap=None):
    program = compile_app(source)
    interp = Interpreter(
        program, collector_factory=gen_factory(young_threshold), max_heap=max_heap
    )
    result = interp.run(args or [])
    return result, interp


CHURN = """
class Main {
    public static void main(String[] args) {
        for (int i = 0; i < 500; i = i + 1) {
            char[] junk = new char[100];
        }
        System.println("done");
    }
}
"""


def test_minor_collections_triggered_by_young_threshold():
    result, interp = run_gen(CHURN)
    assert result.stdout == ["done"]
    assert interp.heap.stats.minor_gc_runs > 3
    # short-lived garbage dies in minor collections
    assert interp.heap.stats.bytes_reclaimed > 0


def test_minor_gc_marks_less_than_full_heap():
    """The point of generational GC: minor collections do not scan the
    tenured repository."""
    source = """
    class Main {
        static Object[] tenured = new Object[200];
        public static void main(String[] args) {
            for (int i = 0; i < 200; i = i + 1) { tenured[i] = new char[100]; }
            System.gc();
            for (int i = 0; i < 3000; i = i + 1) { char[] junk = new char[100]; }
        }
    }
    """
    result, interp = run_gen(source)
    stats = interp.heap.stats
    assert stats.minor_gc_runs >= 5
    # average marked per GC must be far below the live object count
    live = interp.heap.object_count()
    avg_marked = stats.objects_marked / stats.gc_runs
    assert avg_marked < live


def test_old_to_young_pointers_kept_alive_via_remembered_set():
    source = """
    class Node { Node next; }
    class Main {
        static Node head = new Node();
        public static void main(String[] args) {
            churn();
            churn();
            churn();
            // head is old by now; hang a fresh (young) node off it
            head.next = new Node();
            churn();
            churn();
            head.next.hashCode();
            System.println("alive");
        }
        static void churn() {
            for (int i = 0; i < 300; i = i + 1) { char[] junk = new char[100]; }
        }
    }
    """
    result, interp = run_gen(source)
    assert result.stdout == ["alive"]
    nodes = [o for o in interp.heap.iter_objects() if o.type_name() == "Node"]
    assert len(nodes) == 2


def test_survivors_promoted_to_old_generation():
    source = """
    class Main {
        static char[] keeper = new char[2000];
        public static void main(String[] args) {
            for (int i = 0; i < 2000; i = i + 1) { char[] junk = new char[100]; }
            keeper[0] = 'x';
            System.println("ok");
        }
    }
    """
    result, interp = run_gen(source)
    assert result.stdout == ["ok"]
    keeper = interp.statics["Main"]["keeper"]
    assert not interp.collector.is_young(keeper)


def test_major_gc_reclaims_tenured_garbage():
    source = """
    class Main {
        static Object[] pen = new Object[50];
        public static void main(String[] args) {
            for (int i = 0; i < 50; i = i + 1) { pen[i] = new char[500]; }
            churn();
            churn();
            churn();
            for (int i = 0; i < 50; i = i + 1) { pen[i] = null; }
            System.gc();
            System.println("swept");
        }
        static void churn() {
            for (int i = 0; i < 200; i = i + 1) { char[] junk = new char[100]; }
        }
    }
    """
    result, interp = run_gen(source)
    assert result.stdout == ["swept"]
    pen_entries = [
        o
        for o in interp.heap.iter_objects()
        if o.type_name() == "char[]" and getattr(o, "length", 0) == 500
    ]
    assert not pen_entries
    assert interp.heap.stats.major_gc_runs >= 1


def test_finalizers_run_under_generational_gc():
    source = """
    class Res { public void finalize() { System.println("fin"); } }
    class Main {
        public static void main(String[] args) {
            Res r = new Res();
            r = null;
            for (int i = 0; i < 2000; i = i + 1) { char[] junk = new char[100]; }
        }
    }
    """
    result, interp = run_gen(source)
    interp.deep_gc()
    assert interp.stdout.count("fin") == 1


def test_output_identical_to_mark_sweep():
    source = """
    class Main {
        public static void main(String[] args) {
            Vector v = new Vector(4);
            for (int i = 0; i < 300; i = i + 1) {
                v.add("item" + i);
                if (v.size() > 3) { Object o = v.removeLast(); }
                char[] junk = new char[64];
            }
            System.printInt(v.size());
            System.println((String) v.get(0));
        }
    }
    """
    plain, _ = run_gen(source, young_threshold=10 ** 9)  # effectively no minor GCs
    gen, interp = run_gen(source, young_threshold=4 * 1024)
    assert plain.stdout == gen.stdout
    assert interp.heap.stats.minor_gc_runs > 0
