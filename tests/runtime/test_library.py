"""Mini-JDK library classes: Vector, HashTable, StringBuilder, etc."""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import run_main_body, run_source


def out(body, helpers=""):
    result, _ = run_main_body(body, helpers=helpers)
    return result.stdout


def test_vector_add_get_size():
    body = """
    Vector v = new Vector(2);
    v.add("a");
    v.add("b");
    v.add("c");
    System.printInt(v.size());
    System.println((String) v.get(2));
    """
    assert out(body) == ["3", "c"]


def test_vector_grows_past_capacity():
    body = """
    Vector v = new Vector(1);
    for (int i = 0; i < 100; i = i + 1) { v.add("x" + i); }
    System.printInt(v.size());
    System.println((String) v.get(99));
    """
    assert out(body) == ["100", "x99"]


def test_vector_remove_last_leaves_dangling_reference():
    """The jess pattern: removeLast decrements count but keeps the
    array slot — the removed element stays reachable."""
    source = """
    class Main {
        static Vector v = new Vector(4);
        public static void main(String[] args) {
            v.add(new Object());
            Object removed = v.removeLast();
            removed = null;
            System.gc();
        }
    }
    """
    _, interp = run_source(source)
    interp.full_gc()
    live = [o for o in interp.heap.iter_objects() if o.type_name() == "Object"]
    assert len(live) == 1  # dragged: dead but reachable via data[0]


def test_vector_bounds_checks():
    body = """
    Vector v = new Vector(2);
    try { v.get(0); } catch (IndexOutOfBoundsException e) { System.println("get"); }
    try { v.removeLast(); } catch (IndexOutOfBoundsException e) { System.println("rm"); }
    """
    assert out(body) == ["get", "rm"]


def test_vector_contains_uses_equals():
    body = """
    Vector v = new Vector(2);
    v.add("alpha");
    System.println("" + v.contains("al" + "pha"));
    System.println("" + v.contains("beta"));
    """
    assert out(body) == ["true", "false"]


def test_hashtable_put_get_update():
    body = """
    HashTable t = new HashTable(4);
    t.put("one", "1");
    t.put("two", "2");
    t.put("one", "uno");
    System.printInt(t.size());
    System.println((String) t.get("one"));
    System.println("" + (t.get("three") == null));
    """
    assert out(body) == ["2", "uno", "true"]


def test_hashtable_remove():
    body = """
    HashTable t = new HashTable(4);
    t.put("k", "v");
    System.println((String) t.remove("k"));
    System.printInt(t.size());
    System.println("" + (t.remove("k") == null));
    """
    assert out(body) == ["v", "0", "true"]


def test_hashtable_collisions_resolved_by_chaining():
    body = """
    HashTable t = new HashTable(1);
    for (int i = 0; i < 50; i = i + 1) { t.put("key" + i, "val" + i); }
    boolean ok = true;
    for (int i = 0; i < 50; i = i + 1) {
        String got = (String) t.get("key" + i);
        if (!got.equals("val" + i)) { ok = false; }
    }
    System.println("" + ok);
    System.printInt(t.size());
    """
    assert out(body) == ["true", "50"]


def test_hashtable_contains_key():
    body = """
    HashTable t = new HashTable(8);
    t.put("a", "1");
    System.println("" + t.containsKey("a"));
    System.println("" + t.containsKey("b"));
    """
    assert out(body) == ["true", "false"]


def test_stringbuilder_append_and_tostring():
    body = """
    StringBuilder sb = new StringBuilder(2);
    sb.append("hello").appendChar(' ').append("world");
    System.println(sb.toString());
    System.printInt(sb.length());
    """
    assert out(body) == ["hello world", "11"]


def test_string_compare_to():
    body = """
    System.printInt("abc".compareTo("abd"));
    System.printInt("b".compareTo("a"));
    System.printInt("same".compareTo("same"));
    """
    assert out(body) == ["-1", "1", "0"]


def test_string_to_char_array():
    body = """
    char[] cs = "abc".toCharArray();
    System.printInt(cs.length);
    System.println("" + cs[1]);
    """
    assert out(body) == ["3", "b"]


def test_string_value_of_char_array():
    body = """
    char[] cs = new char[5];
    cs[0] = 'h';
    cs[1] = 'i';
    System.println(String.valueOf(cs, 2));
    """
    assert out(body) == ["hi"]


def test_math_helpers():
    body = """
    System.printInt(Math.abs(-5));
    System.printInt(Math.min(3, 9));
    System.printInt(Math.max(3, 9));
    System.printInt(Math.isqrt(1000000));
    """
    assert out(body) == ["5", "3", "9", "1000"]


def test_random_is_deterministic_and_bounded():
    body = """
    Random r = new Random(12345);
    boolean ok = true;
    for (int i = 0; i < 200; i = i + 1) {
        int v = r.nextInt(10);
        if (v < 0 || v >= 10) { ok = false; }
    }
    System.println("" + ok);
    """
    assert out(body) == ["true"]


def test_locale_constants_exist():
    body = """
    System.println(Locale.ENGLISH.getLanguage());
    System.println(Locale.FRENCH.getLanguage());
    """
    assert out(body) == ["en", "fr"]


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=999), min_size=1, max_size=30))
def test_vector_roundtrip_property(values):
    """Whatever ints (as strings) go into a Vector come back in order."""
    adds = " ".join(f'v.add("s{v}");' for v in values)
    body = f"""
    Vector v = new Vector(2);
    {adds}
    for (int i = 0; i < v.size(); i = i + 1) {{
        System.println((String) v.get(i));
    }}
    """
    assert out(body) == [f"s{v}" for v in values]


@settings(max_examples=20, deadline=None)
@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=99),
        st.integers(min_value=0, max_value=999),
        min_size=1,
        max_size=20,
    )
)
def test_hashtable_model_property(mapping):
    """HashTable agrees with a Python dict on get after a put sequence."""
    puts = " ".join(f't.put("k{k}", "v{v}");' for k, v in mapping.items())
    gets = " ".join(
        f'System.println((String) t.get("k{k}"));' for k in sorted(mapping)
    )
    body = f"""
    HashTable t = new HashTable(4);
    {puts}
    System.printInt(t.size());
    {gets}
    """
    expected = [str(len(mapping))] + [f"v{mapping[k]}" for k in sorted(mapping)]
    assert out(body) == expected
