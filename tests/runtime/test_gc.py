"""Garbage collector behaviour: reachability, roots, finalization."""

from tests.conftest import run_main_body, run_source


def live_type_counts(interp):
    counts = {}
    for obj in interp.heap.iter_objects():
        counts[obj.type_name()] = counts.get(obj.type_name(), 0) + 1
    return counts


def test_unreachable_objects_are_collected():
    source = """
    class Node { Node next; }
    class Main {
        public static void main(String[] args) {
            Node head = new Node();
            head.next = new Node();
            head = null;
            System.gc();
            System.println("ok");
        }
    }
    """
    result, interp = run_source(source)
    interp.full_gc()
    assert live_type_counts(interp).get("Node", 0) == 0


def test_reachable_chain_survives():
    source = """
    class Node { Node next; }
    class Main {
        static Node root;
        public static void main(String[] args) {
            root = new Node();
            root.next = new Node();
            root.next.next = new Node();
            System.gc();
        }
    }
    """
    _, interp = run_source(source)
    interp.full_gc()
    assert live_type_counts(interp)["Node"] == 3


def test_static_fields_are_roots():
    source = """
    class Main {
        static Object keep = new Object();
        public static void main(String[] args) { System.gc(); }
    }
    """
    _, interp = run_source(source)
    interp.full_gc()
    assert live_type_counts(interp).get("Object", 0) == 1


def test_cycle_is_collected():
    source = """
    class Node { Node next; }
    class Main {
        public static void main(String[] args) {
            Node a = new Node();
            Node b = new Node();
            a.next = b;
            b.next = a;
            a = null;
            b = null;
            System.gc();
        }
    }
    """
    # The cycle is unreachable once both locals die; under refcounting it
    # would leak — our tracing GC must reclaim it (this is exactly the
    # drag-semantics point the repro band warns about).
    _, interp = run_source(source)
    interp.full_gc()
    assert live_type_counts(interp).get("Node", 0) == 0


def test_locals_are_roots_during_execution():
    source = """
    class Main {
        public static void main(String[] args) {
            Object held = new Object();
            System.gc();
            int count = countObjects();
            held.hashCode();
        }
        static int countObjects() { return 0; }
    }
    """
    # If locals were not roots, held.hashCode() would crash on a swept
    # object; completing without error is the assertion.
    result, _ = run_source(source)
    assert result is not None


def test_array_elements_are_traced():
    source = """
    class Main {
        static Object[] keep = new Object[2];
        public static void main(String[] args) {
            keep[0] = new Object();
            System.gc();
            keep[0].hashCode();
        }
    }
    """
    _, interp = run_source(source)
    interp.full_gc()
    assert live_type_counts(interp).get("Object", 0) == 1


def test_finalizer_runs_before_reclamation():
    source = """
    class Noisy {
        public void finalize() { System.println("finalized"); }
    }
    class Main {
        public static void main(String[] args) {
            Noisy n = new Noisy();
            n = null;
            deepClean();
        }
        static void deepClean() { System.gc(); }
    }
    """
    result, interp = run_source(source)
    interp.deep_gc()
    assert "finalized" in interp.stdout
    assert live_type_counts(interp).get("Noisy", 0) == 0


def test_finalizer_runs_exactly_once():
    source = """
    class Noisy {
        public void finalize() { System.println("f"); }
    }
    class Main {
        public static void main(String[] args) {
            Noisy n = new Noisy();
            n = null;
        }
    }
    """
    _, interp = run_source(source)
    interp.deep_gc()
    interp.deep_gc()
    assert interp.stdout.count("f") == 1


def test_finalizer_resurrection_keeps_object_alive_once():
    source = """
    class Phoenix {
        static Phoenix saved;
        public void finalize() { saved = this; }
    }
    class Main {
        public static void main(String[] args) {
            Phoenix p = new Phoenix();
            p = null;
        }
    }
    """
    _, interp = run_source(source)
    interp.deep_gc()
    assert live_type_counts(interp).get("Phoenix", 0) == 1
    # Drop the static reference; already-finalized objects die for good.
    interp.statics["Phoenix"]["saved"] = None
    interp.deep_gc()
    assert live_type_counts(interp).get("Phoenix", 0) == 0


def test_finalizer_exception_is_swallowed():
    source = """
    class Bad {
        public void finalize() { throw new RuntimeException("from finalizer"); }
    }
    class Main {
        public static void main(String[] args) {
            Bad b = new Bad();
            b = null;
        }
    }
    """
    _, interp = run_source(source)
    interp.deep_gc()  # must not raise
    assert interp._finalizer_errors == 1


def test_objects_kept_alive_by_finalize_queue_members():
    source = """
    class Holder {
        Object payload;
        Holder(Object payload) { this.payload = payload; }
        public void finalize() { payload.hashCode(); }
    }
    class Main {
        public static void main(String[] args) {
            Holder h = new Holder(new Object());
            h = null;
        }
    }
    """
    _, interp = run_source(source)
    # First collection queues Holder; its payload must survive so the
    # finalizer can use it.
    interp.full_gc()
    assert live_type_counts(interp).get("Holder", 0) == 1
    assert live_type_counts(interp).get("Object", 0) >= 1
    interp.deep_gc()
    assert live_type_counts(interp).get("Holder", 0) == 0


def test_gc_stats_accumulate():
    _, interp = run_main_body(
        "for (int i = 0; i < 100; i = i + 1) { Object o = new Object(); } System.gc();"
    )
    assert interp.heap.stats.gc_runs >= 1
    assert interp.heap.stats.objects_marked > 0
    assert interp.heap.stats.bytes_reclaimed > 0


def test_gc_pause_time_accumulates():
    """Every collection adds its stop-the-world wall time to
    gc_pause_seconds, telemetry attached or not."""
    _, interp = run_main_body(
        "for (int i = 0; i < 100; i = i + 1) { Object o = new Object(); } System.gc();"
    )
    stats = interp.heap.stats
    assert stats.gc_runs >= 1
    assert stats.gc_pause_seconds > 0.0
    assert stats.deep_gc_runs == 0  # no profiler, no deep GC
    before = stats.gc_pause_seconds
    interp.full_gc()
    assert stats.gc_pause_seconds > before


def test_deep_gc_runs_counted():
    _, interp = run_main_body("Object o = new Object();")
    assert interp.heap.stats.deep_gc_runs == 0
    interp.deep_gc()
    interp.deep_gc()
    assert interp.heap.stats.deep_gc_runs == 2
