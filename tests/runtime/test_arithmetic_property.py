"""Differential property test: mini-Java integer arithmetic agrees with
a reference evaluator implementing Java semantics (truncating division,
sign-following remainder, short-circuit booleans)."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import MiniJavaException
from repro.mjava import ast
from repro.mjava.pretty import format_expr
from tests.conftest import run_main_body


def java_div(a, b):
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def java_mod(a, b):
    return a - java_div(a, b) * b


def evaluate(expr):
    """Reference evaluation with Java semantics; raises ZeroDivisionError."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Unary):
        value = evaluate(expr.operand)
        return -value if expr.op == "-" else (not value)
    if isinstance(expr, ast.Binary):
        op = expr.op
        if op == "&&":
            return evaluate(expr.left) and evaluate(expr.right)
        if op == "||":
            return evaluate(expr.left) or evaluate(expr.right)
        a = evaluate(expr.left)
        b = evaluate(expr.right)
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0:
                raise ZeroDivisionError
            return java_div(a, b)
        if op == "%":
            if b == 0:
                raise ZeroDivisionError
            return java_mod(a, b)
        if op == "==":
            return a == b
        if op == "!=":
            return a != b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
    raise TypeError(expr)


def int_exprs(depth):
    leaf = st.integers(min_value=-999, max_value=999).map(ast.IntLit)
    if depth == 0:
        return leaf
    sub = int_exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(["+", "-", "*", "/", "%"]), sub, sub).map(
            lambda t: ast.Binary(t[0], t[1], t[2])
        ),
        sub.map(lambda e: ast.Unary("-", e)),
    )


def bool_exprs(depth):
    base = st.tuples(
        st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
        int_exprs(1),
        int_exprs(1),
    ).map(lambda t: ast.Binary(t[0], t[1], t[2]))
    if depth == 0:
        return base
    sub = bool_exprs(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["&&", "||"]), sub, sub).map(
            lambda t: ast.Binary(t[0], t[1], t[2])
        ),
        sub.map(lambda e: ast.Unary("!", e)),
    )


def run_expr(text, printer):
    result, _ = run_main_body(f"{printer}({text});")
    return result.stdout[0]


@settings(max_examples=120, deadline=None)
@given(int_exprs(3))
def test_integer_expressions_match_reference(expr):
    try:
        expected = evaluate(expr)
    except ZeroDivisionError:
        expected = None
    text = format_expr(expr)
    if expected is None:
        try:
            run_expr(text, "System.printInt")
            raised = False
        except MiniJavaException as exc:
            raised = exc.class_name == "ArithmeticException"
        assert raised
    else:
        assert run_expr(text, "System.printInt") == str(expected)


@settings(max_examples=80, deadline=None)
@given(bool_exprs(2))
def test_boolean_expressions_match_reference(expr):
    try:
        expected = evaluate(expr)
    except ZeroDivisionError:
        assume(False)
    text = format_expr(expr)
    assert run_expr(f'"" + {text}', "System.println") == ("true" if expected else "false")


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=-10**6, max_value=10**6),
    st.integers(min_value=-10**6, max_value=10**6),
)
def test_division_pair_property(a, b):
    assume(b != 0)
    out, _ = run_main_body(
        f"System.printInt(({a}) / ({b})); System.printInt(({a}) % ({b}));"
    )
    q, r = int(out.stdout[0]), int(out.stdout[1])
    assert q == java_div(a, b)
    assert r == java_mod(a, b)
    # the Java invariant: (a / b) * b + (a % b) == a
    assert q * b + r == a
