"""Log file round trip and error handling."""

import json

import pytest

from repro.errors import ProfileError
from repro.core.logfile import read_log, write_log
from repro.core import profile_source
from tests.core.test_analyzer import make_record


def test_roundtrip_preserves_records(tmp_path):
    records = [
        make_record(handle=1, last_use=0),
        make_record(handle=2, last_use=555, use_frame="A.b:3", nested=("A.b:3", "A.a:1")),
    ]
    path = tmp_path / "run.log"
    count = write_log(path, records, end_time=12345, metadata={"bench": "test"})
    assert count == 2
    loaded = read_log(path)
    assert loaded.end_time == 12345
    assert loaded.metadata == {"bench": "test"}
    assert len(loaded.records) == 2
    for original, parsed in zip(records, loaded.records):
        assert parsed.to_dict() == original.to_dict()


def test_roundtrip_of_real_profile(tmp_path):
    source = """
    class Main {
        public static void main(String[] args) {
            for (int i = 0; i < 20; i = i + 1) { char[] junk = new char[500]; }
        }
    }
    """
    result = profile_source(source, "Main", interval_bytes=4096)
    path = tmp_path / "real.log"
    write_log(path, result.records, end_time=result.end_time)
    loaded = read_log(path)
    assert len(loaded.records) == len(result.records)
    assert sum(r.drag for r in loaded.records) == sum(r.drag for r in result.records)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.log"
    path.write_text("")
    with pytest.raises(ProfileError):
        read_log(path)


def test_wrong_format_rejected(tmp_path):
    path = tmp_path / "bad.log"
    path.write_text(json.dumps({"format": "something-else", "version": 1}) + "\n")
    with pytest.raises(ProfileError):
        read_log(path)


def test_wrong_version_rejected(tmp_path):
    path = tmp_path / "bad2.log"
    path.write_text(json.dumps({"format": "repro-drag-log", "version": 99}) + "\n")
    with pytest.raises(ProfileError):
        read_log(path)


def test_corrupt_record_reports_line(tmp_path):
    path = tmp_path / "bad3.log"
    path.write_text(
        json.dumps({"format": "repro-drag-log", "version": 1}) + "\n{not json}\n"
    )
    with pytest.raises(ProfileError) as excinfo:
        read_log(path)
    assert ":2:" in str(excinfo.value)


def test_blank_lines_tolerated(tmp_path):
    records = [make_record(handle=1)]
    path = tmp_path / "gaps.log"
    write_log(path, records)
    with open(path, "a") as f:
        f.write("\n\n")
    assert len(read_log(path).records) == 1
