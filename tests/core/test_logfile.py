"""Log file round trip and error handling."""

import json

import pytest

from repro.errors import ProfileError
from repro.core.logfile import LogWriter, iter_log, read_log, write_log
from repro.core import profile_source
from tests.core.test_analyzer import make_record


def test_roundtrip_preserves_records(tmp_path):
    records = [
        make_record(handle=1, last_use=0),
        make_record(handle=2, last_use=555, use_frame="A.b:3", nested=("A.b:3", "A.a:1")),
    ]
    path = tmp_path / "run.log"
    count = write_log(path, records, end_time=12345, metadata={"bench": "test"})
    assert count == 2
    loaded = read_log(path)
    assert loaded.end_time == 12345
    assert loaded.metadata == {"bench": "test"}
    assert len(loaded.records) == 2
    for original, parsed in zip(records, loaded.records):
        assert parsed.to_dict() == original.to_dict()


def test_roundtrip_of_real_profile(tmp_path):
    source = """
    class Main {
        public static void main(String[] args) {
            for (int i = 0; i < 20; i = i + 1) { char[] junk = new char[500]; }
        }
    }
    """
    result = profile_source(source, "Main", interval_bytes=4096)
    path = tmp_path / "real.log"
    write_log(path, result.records, end_time=result.end_time)
    loaded = read_log(path)
    assert len(loaded.records) == len(result.records)
    assert sum(r.drag for r in loaded.records) == sum(r.drag for r in result.records)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.log"
    path.write_text("")
    with pytest.raises(ProfileError):
        read_log(path)


def test_wrong_format_rejected(tmp_path):
    path = tmp_path / "bad.log"
    path.write_text(json.dumps({"format": "something-else", "version": 1}) + "\n")
    with pytest.raises(ProfileError):
        read_log(path)


def test_wrong_version_rejected(tmp_path):
    path = tmp_path / "bad2.log"
    path.write_text(json.dumps({"format": "repro-drag-log", "version": 99}) + "\n")
    with pytest.raises(ProfileError):
        read_log(path)


def test_corrupt_record_reports_line(tmp_path):
    path = tmp_path / "bad3.log"
    path.write_text(
        json.dumps({"format": "repro-drag-log", "version": 1}) + "\n{not json}\n"
    )
    with pytest.raises(ProfileError) as excinfo:
        read_log(path)
    assert ":2:" in str(excinfo.value)


def test_blank_lines_tolerated(tmp_path):
    records = [make_record(handle=1)]
    path = tmp_path / "gaps.log"
    write_log(path, records)
    with open(path, "a") as f:
        f.write("\n\n")
    assert len(read_log(path).records) == 1


def test_iter_log_yields_records_lazily(tmp_path):
    records = [make_record(handle=i) for i in range(5)]
    path = tmp_path / "lazy.log"
    write_log(path, records, end_time=99)
    iterator = iter_log(path)
    assert next(iterator).handle == 0  # nothing materialized up front
    assert [r.handle for r in iterator] == [1, 2, 3, 4]


def test_iter_log_matches_read_log(tmp_path):
    records = [
        make_record(handle=1, last_use=0),
        make_record(handle=2, last_use=400, use_frame="A.b:3"),
    ]
    path = tmp_path / "same.log"
    write_log(path, records)
    assert [r.to_dict() for r in iter_log(path)] == [
        r.to_dict() for r in read_log(path).records
    ]


def _truncated_log(tmp_path):
    """A log whose final line was cut mid-record (crashed run)."""
    path = tmp_path / "crashed.log"
    write_log(path, [make_record(handle=i) for i in range(3)], end_time=500)
    text = path.read_text()
    path.write_text(text[: len(text) - 25])  # chop inside the last record
    return path


def test_truncated_final_line_strict_raises(tmp_path):
    path = _truncated_log(tmp_path)
    with pytest.raises(ProfileError):
        read_log(path)
    with pytest.raises(ProfileError):
        list(iter_log(path))


def test_truncated_final_line_lenient_keeps_good_records(tmp_path):
    path = _truncated_log(tmp_path)
    loaded = read_log(path, strict=False)
    assert [r.handle for r in loaded.records] == [0, 1]
    assert [r.handle for r in iter_log(path, strict=False)] == [0, 1]


def test_corrupt_interior_record_raises_even_lenient(tmp_path):
    """Lenient mode only forgives a truncated *final* line — damage in
    the middle of a log is still an error."""
    path = tmp_path / "interior.log"
    write_log(path, [make_record(handle=1)])
    with open(path, "a") as f:
        f.write("{garbage}\n")
        f.write(json.dumps(make_record(handle=2).to_dict()) + "\n")
    with pytest.raises(ProfileError):
        read_log(path, strict=False)


def test_streaming_log_writer_patches_end_time(tmp_path):
    path = tmp_path / "streamed.log"
    writer = LogWriter(path, metadata={"main": "Main"})
    writer.write_record(make_record(handle=7))
    writer.close(end_time=4242)
    loaded = read_log(path)
    assert loaded.end_time == 4242
    assert loaded.metadata == {"main": "Main"}
    assert [r.handle for r in loaded.records] == [7]


def test_streaming_log_writer_readable_before_close(tmp_path):
    """An in-flight v1 log is already a valid (end_time-less) log."""
    path = tmp_path / "inflight.log"
    writer = LogWriter(path)
    writer.write_record(make_record(handle=1))
    writer._file.flush()
    loaded = read_log(path)
    assert loaded.end_time is None
    assert len(loaded.records) == 1
    writer.close(end_time=10)


def test_v1_header_carries_finalizer_errors(tmp_path):
    from repro.core.logfile import LogWriter, read_log

    path = tmp_path / "fe.draglog"
    writer = LogWriter(path)
    writer.close(end_time=700, finalizer_errors=3)
    loaded = read_log(path)
    assert loaded.end_time == 700
    assert loaded.finalizer_errors == 3


def test_v1_header_without_finalizer_errors_reads_none(tmp_path):
    from repro.core.logfile import LogWriter, read_log

    path = tmp_path / "nofe.draglog"
    writer = LogWriter(path)
    writer.close(end_time=700)
    assert read_log(path).finalizer_errors is None
