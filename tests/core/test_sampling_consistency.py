"""Cross-checks between the on-line samples (phase 1) and the off-line
curves reconstructed from the object log (phase 2), plus profiling
under the generational collector."""

from repro.core import HeapProfiler, curve_from_records, profile_source
from repro.runtime.generational import GenerationalCollector
from repro.runtime.interpreter import Interpreter
from tests.conftest import compile_app

SOURCE = """
class Main {
    static Vector keep = new Vector(8);
    public static void main(String[] args) {
        for (int i = 0; i < 60; i = i + 1) {
            char[] work = new char[600];
            work[0] = 'x';
            if (i % 10 == 0) { keep.add(work); }
        }
        for (int k = 0; k < keep.size(); k = k + 1) {
            char[] kept = (char[]) keep.get(k);
            System.printInt(kept[0]);
        }
    }
}
"""


def test_samples_match_offline_reachable_curve():
    """At each deep-GC sample, the live heap equals the reconstructed
    reachable curve plus the excluded objects (interned strings, args)
    the log deliberately omits."""
    result = profile_source(SOURCE, "Main", interval_bytes=4096)
    curve = curve_from_records(result.records, "reachable")
    interp_excluded = 0  # excluded bytes are not in the records
    for sample in result.samples:
        if sample.time == result.end_time:
            # at the final sample every record closes (survivors are
            # logged with collection_time == end), so the right-open
            # curve is 0 there by construction
            continue
        reconstructed = curve.value_at(sample.time)
        assert reconstructed <= sample.reachable_bytes
        # the gap is exactly the excluded objects, which are a small,
        # constant overhead (interned literals + argv)
        gap = sample.reachable_bytes - reconstructed
        assert gap < 4096, (sample, reconstructed)
        interp_excluded = max(interp_excluded, gap)
    assert interp_excluded > 0  # interned strings do exist


def test_sample_times_are_monotone_and_bounded_by_interval():
    result = profile_source(SOURCE, "Main", interval_bytes=4096)
    times = [s.time for s in result.samples]
    assert times == sorted(times)
    # consecutive samples are at least one interval of allocation apart
    for a, b in zip(times, times[1:]):
        if b == result.end_time:
            continue  # final end-of-program sample may come sooner
        assert b - a >= 4096 * 0.5


def test_profiling_under_generational_collector():
    """Deep GCs force major collections, so drag measurement works the
    same under the generational collector."""
    program = compile_app(SOURCE)
    profiler = HeapProfiler(interval_bytes=4096)
    interp = Interpreter(
        program,
        profiler=profiler,
        collector_factory=lambda heap, prog: GenerationalCollector(
            heap, prog, young_threshold=2048
        ),
    )
    result = interp.run([])
    assert interp.heap.stats.minor_gc_runs > 0  # minors happened between samples
    assert interp.heap.stats.major_gc_runs >= len(profiler.samples)

    baseline = profile_source(SOURCE, "Main", interval_bytes=4096)
    assert result.stdout == baseline.run_result.stdout
    # same objects logged; minor collections can only shorten observed
    # drag (earlier reclamation), never lengthen it
    gen_drag = sum(r.drag for r in profiler.records)
    base_drag = sum(r.drag for r in baseline.records)
    assert len(profiler.records) == len(baseline.records)
    assert gen_drag <= base_drag * 1.05
