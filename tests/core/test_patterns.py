"""Lifetime-pattern classification (§3.4 patterns 1-4)."""

from repro.core.analyzer import SiteGroup
from repro.core.patterns import (
    LifetimePattern,
    classify_group,
    constructor_only_use,
    suggest_transformation,
)
from tests.core.test_analyzer import make_record

INTERVAL = 10_000


def group_of(records):
    g = SiteGroup("site")
    for r in records:
        g.add(r)
    return g


def test_pattern1_all_never_used():
    records = [
        make_record(handle=i, created=100, last_use=0, collected=100_000)
        for i in range(5)
    ]
    assert classify_group(group_of(records), INTERVAL) is LifetimePattern.ALL_NEVER_USED


def test_pattern1_counts_constructor_only_uses():
    records = [
        make_record(
            handle=i,
            created=100,
            last_use=120,  # tiny in-use window...
            collected=100_000,
            use_frame="Thing.<init>:4",  # ...inside the constructor
        )
        for i in range(5)
    ]
    assert classify_group(group_of(records), INTERVAL) is LifetimePattern.ALL_NEVER_USED


def test_zero_duration_use_outside_ctor_is_not_never_used():
    records = [
        make_record(
            handle=i,
            created=100,
            last_use=100,  # same clock: used with no intervening allocation
            collected=100_000,
            use_frame="App.work:9",
        )
        for i in range(5)
    ]
    pattern = classify_group(group_of(records), INTERVAL)
    assert pattern is not LifetimePattern.ALL_NEVER_USED
    assert pattern is not LifetimePattern.MOSTLY_NEVER_USED


def test_pattern2_mostly_never_used():
    never = [
        make_record(handle=i, created=0, last_use=0, collected=100_000, size=16)
        for i in range(7)
    ]
    used = [
        make_record(handle=100 + i, created=0, last_use=60_000, collected=100_000, size=16)
        for i in range(3)
    ]
    assert (
        classify_group(group_of(never + used), INTERVAL)
        is LifetimePattern.MOSTLY_NEVER_USED
    )


def test_pattern3_large_drag():
    records = [
        make_record(handle=i, created=0, last_use=10_000, collected=10_000 + 2 * INTERVAL)
        for i in range(6)
    ]
    assert classify_group(group_of(records), INTERVAL) is LifetimePattern.LARGE_DRAG


def test_pattern4_high_variance():
    # a db-like repository: a few objects used late (tiny drag), most
    # with wildly varying drags
    records = []
    for i in range(20):
        drag_len = 100 if i % 4 else 500_000
        records.append(
            make_record(
                handle=i,
                created=0,
                last_use=50_000,
                collected=50_000 + drag_len,
                use_frame="Db.query:7",
            )
        )
    assert classify_group(group_of(records), INTERVAL) is LifetimePattern.HIGH_VARIANCE


def test_empty_group_unclassified():
    assert classify_group(group_of([]), INTERVAL) is LifetimePattern.UNCLASSIFIED


def test_zero_drag_group_unclassified():
    records = [make_record(created=100, last_use=500, collected=500)]
    assert classify_group(group_of(records), INTERVAL) is LifetimePattern.UNCLASSIFIED


def test_suggestions_match_paper():
    assert suggest_transformation(LifetimePattern.ALL_NEVER_USED) == "dead-code-removal"
    assert suggest_transformation(LifetimePattern.MOSTLY_NEVER_USED) == "lazy-allocation"
    assert suggest_transformation(LifetimePattern.LARGE_DRAG) == "assign-null"
    assert suggest_transformation(LifetimePattern.HIGH_VARIANCE) is None


def test_constructor_only_use_helper():
    never = make_record(last_use=0)
    assert constructor_only_use(never)
    ctor_use = make_record(created=10, last_use=20, use_frame="X.<init>:3")
    assert constructor_only_use(ctor_use)
    late_ctor_use = make_record(created=10, last_use=50_000, use_frame="X.<init>:3")
    assert not constructor_only_use(late_ctor_use)
    normal_use = make_record(created=10, last_use=20, use_frame="X.run:3")
    assert not constructor_only_use(normal_use)
