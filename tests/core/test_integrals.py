"""Space-time integrals and curves, with invariants as property tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.integrals import (
    HeapCurve,
    SavingsRow,
    curve_from_records,
    integral_bytes2,
    integral_mb2,
    savings,
)
from tests.core.test_analyzer import make_record


def test_reachable_integral_single_object():
    r = make_record(created=100, collected=300, size=10)
    assert integral_bytes2([r], "reachable") == 10 * 200


def test_in_use_integral_excludes_never_used():
    used = make_record(handle=1, created=100, last_use=200, collected=300, size=10)
    never = make_record(handle=2, created=100, last_use=0, collected=300, size=10)
    assert integral_bytes2([used, never], "in_use") == 10 * 100


def test_drag_integral_complements_in_use():
    r = make_record(created=100, last_use=200, collected=300, size=10)
    reach = integral_bytes2([r], "reachable")
    in_use = integral_bytes2([r], "in_use")
    drag = integral_bytes2([r], "drag")
    assert reach == in_use + drag


def test_curve_steps():
    r1 = make_record(handle=1, created=0, collected=100, size=10)
    r2 = make_record(handle=2, created=50, collected=150, size=20)
    curve = curve_from_records([r1, r2], "reachable")
    assert curve.value_at(0) == 10
    assert curve.value_at(49) == 10
    assert curve.value_at(50) == 30
    assert curve.value_at(100) == 20
    assert curve.value_at(149) == 20
    assert curve.value_at(150) == 0


def test_curve_integral_matches_exact_integral():
    records = [
        make_record(handle=i, created=i * 10, last_use=i * 10 + 5, collected=i * 10 + 100, size=8 * (i + 1))
        for i in range(20)
    ]
    curve = curve_from_records(records, "reachable")
    assert curve.integral() == integral_bytes2(records, "reachable")


def test_mb2_scaling():
    r = make_record(created=0, collected=2 ** 20, size=2 ** 20)
    assert abs(integral_mb2([r], "reachable") - 1.0) < 1e-12


def test_savings_row_ratios():
    orig = [make_record(handle=1, created=0, last_use=100, collected=1000, size=100)]
    # revised: same in-use, collected earlier
    revised = [make_record(handle=1, created=0, last_use=100, collected=200, size=100)]
    row = savings(orig, revised)
    # reachable: orig 100*1000, revised 100*200; in-use: 100*100
    assert abs(row.space_saving_pct - 80.0) < 1e-9
    # drag saving = (100000-20000)/(100000-10000) = 88.88%
    assert abs(row.drag_saving_pct - 100.0 * 80000 / 90000) < 1e-6


def test_drag_saving_can_exceed_100_percent():
    """The mc case: the revised run eliminates allocations entirely, so
    the reduced reachable integral dips below the original in-use."""
    orig = [make_record(handle=1, created=0, last_use=500, collected=1000, size=100)]
    revised = []
    row = savings(orig, revised)
    assert row.drag_saving_pct > 100.0
    assert abs(row.space_saving_pct - 100.0) < 1e-9


def test_empty_profiles_do_not_divide_by_zero():
    row = savings([], [])
    assert row.drag_saving_pct == 0.0
    assert row.space_saving_pct == 0.0


# -- property tests -----------------------------------------------------------

record_strategy = st.builds(
    lambda h, c, use_len, drag_len, size: make_record(
        handle=h,
        created=c,
        last_use=0 if use_len == 0 else c + use_len,
        collected=c + use_len + drag_len,
        size=size * 8,
    ),
    h=st.integers(min_value=1, max_value=10 ** 6),
    c=st.integers(min_value=1, max_value=10 ** 6),
    use_len=st.integers(min_value=0, max_value=10 ** 5),
    drag_len=st.integers(min_value=0, max_value=10 ** 5),
    size=st.integers(min_value=1, max_value=10 ** 4),
)


@settings(max_examples=200, deadline=None)
@given(st.lists(record_strategy, max_size=40))
def test_reachable_dominates_in_use_property(records):
    """At every time, reachable bytes >= in-use bytes, and the integrals
    decompose: reachable = in_use + drag."""
    reach = integral_bytes2(records, "reachable")
    in_use = integral_bytes2(records, "in_use")
    drag = integral_bytes2(records, "drag")
    assert reach == in_use + drag
    assert reach >= in_use >= 0
    reach_curve = curve_from_records(records, "reachable")
    use_curve = curve_from_records(records, "in_use")
    probe_times = sorted({t for t in reach_curve.times} | {t for t in use_curve.times})
    for t in probe_times:
        assert reach_curve.value_at(t) >= use_curve.value_at(t)


@settings(max_examples=100, deadline=None)
@given(st.lists(record_strategy, max_size=30))
def test_curve_integral_equals_exact_property(records):
    for kind in ("reachable", "in_use", "drag"):
        assert curve_from_records(records, kind).integral() == integral_bytes2(
            records, kind
        )


@settings(max_examples=100, deadline=None)
@given(st.lists(record_strategy, min_size=1, max_size=30))
def test_per_record_drag_sums_to_drag_integral(records):
    assert sum(r.drag for r in records) == integral_bytes2(records, "drag")
