"""End-to-end sampling through the profiler hooks.

Two guarantees the refactor pins down:

* ``--sample-bytes 1`` is *bit-identical* to an unsampled run: same
  records, same v2 bytes, no matter the seed — the weight machinery
  costs a full-rate profile literally nothing.
* Sampled runs produce an exact *subset* of the full run's record
  stream (the pairing invariant: a freed object is logged iff its
  allocation was sampled), with Horvitz-Thompson weights whose totals
  estimate the full run.
"""

import io

import pytest

from repro.benchmarks.registry import get_benchmark
from repro.benchmarks.runner import compile_benchmark
from repro.core.analyzer import DragAnalysis
from repro.core.profiler import profile_program
from repro.stream.codec import V2FrameEncoder


@pytest.fixture(scope="module")
def bench_programs():
    out = {}
    for name in ("db", "euler"):
        bench = get_benchmark(name)
        out[name] = (bench, compile_benchmark(bench, revised=False))
    return out


def run(bench, program, **kwargs):
    return profile_program(
        program, bench.args_for("primary"), interval_bytes=bench.interval_bytes, **kwargs
    )


def v2_bytes(profile):
    buf = io.BytesIO()
    enc = V2FrameEncoder(buf, metadata=None)
    for record in profile.records:
        enc.write_record(record)
    for sample in profile.samples:
        enc.write_sample(sample)
    enc.write_end(end_time=profile.end_time)
    return buf.getvalue()


@pytest.mark.parametrize("name", ["db", "euler"])
def test_sample_bytes_one_is_bit_identical(bench_programs, name):
    bench, program = bench_programs[name]
    full = run(bench, program)
    one = run(bench, program, sample_bytes=1, seed=99)
    assert len(one.records) == len(full.records)
    assert all(r.weight == 1.0 for r in one.records)
    assert v2_bytes(one) == v2_bytes(full)


@pytest.mark.parametrize("name", ["db", "euler"])
def test_no_sampler_constructed_at_full_rate(bench_programs, name):
    bench, program = bench_programs[name]
    assert run(bench, program, sample_bytes=1).profiler.sampler is None
    assert run(bench, program).profiler.sampler is None


@pytest.mark.parametrize("name", ["db", "euler"])
def test_sampled_records_are_subset_with_exact_pairing(bench_programs, name):
    """Every sampled record matches its full-run twin field-for-field
    except the weight — the trailer-as-marker design means a sampled
    alloc's uses and free land on the same object, and an unsampled
    alloc contributes nothing at all."""
    bench, program = bench_programs[name]
    full = run(bench, program)
    samp = run(bench, program, sample_bytes=400, seed=0)
    assert 0 < len(samp.records) < len(full.records)
    by_handle = {r.handle: r for r in full.records}
    for record in samp.records:
        twin = by_handle.get(record.handle)
        assert twin is not None, f"sampled handle {record.handle} not in full run"
        got, want = record.to_dict(), twin.to_dict()
        got.pop("weight", None)
        assert got == want
    # and the sampled handles appear in the same order they do in full
    order = {r.handle: i for i, r in enumerate(full.records)}
    positions = [order[r.handle] for r in samp.records]
    assert positions == sorted(positions)


@pytest.mark.parametrize("name", ["db", "euler"])
def test_weighted_totals_estimate_full_run(bench_programs, name):
    bench, program = bench_programs[name]
    full_analysis = DragAnalysis(run(bench, program).records)
    samp_analysis = DragAnalysis(
        run(bench, program, sample_bytes=400, seed=0).records
    )
    assert samp_analysis.sampled
    assert 0 < samp_analysis.effective_sample_rate < 1
    assert samp_analysis.est_total_bytes == pytest.approx(
        full_analysis.total_bytes, rel=0.15
    )
    assert samp_analysis.est_total_drag == pytest.approx(
        full_analysis.total_drag, rel=0.15
    )


@pytest.mark.parametrize("name", ["db", "euler"])
def test_sampling_is_seed_deterministic(bench_programs, name):
    bench, program = bench_programs[name]
    a = run(bench, program, sample_bytes=400, seed=5)
    b = run(bench, program, sample_bytes=400, seed=5)
    c = run(bench, program, sample_bytes=400, seed=6)
    assert v2_bytes(a) == v2_bytes(b)
    assert [r.handle for r in a.records] != [r.handle for r in c.records]


def test_full_rate_analysis_is_unsampled(bench_programs):
    bench, program = bench_programs["db"]
    analysis = DragAnalysis(run(bench, program).records)
    assert not analysis.sampled
    assert analysis.effective_sample_rate == 1.0
    assert analysis.est_total_drag == analysis.total_drag
    assert isinstance(analysis.est_total_drag, int)
