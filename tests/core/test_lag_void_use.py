"""The Röjemo/Runciman lag-drag-void-use decomposition [21], which the
paper's drag measurements build on — reproduced as an extension."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import profile_source
from repro.core.integrals import integral_bytes2
from tests.core.test_analyzer import make_record
from repro.core.trailer import ObjectRecord


def make_full_record(created, first, last, collected, size=16, handle=1):
    return ObjectRecord(
        handle=handle,
        type_name="Object",
        size=size,
        creation_time=created,
        first_use_time=first,
        last_use_time=last,
        collection_time=collected,
        alloc_site=0,
        site_label="A.m:1",
        site_kind="new",
        site_is_library=False,
        nested_alloc=("A.m:1",),
        last_use_frame=None,
        last_use_chain=None,
        excluded=False,
        survived_to_end=False,
    )


def test_four_phases_partition_the_lifetime():
    r = make_full_record(created=100, first=250, last=600, collected=1000)
    assert r.lag_time == 150
    assert r.use_time == 350
    assert r.drag_time == 400
    assert r.lag_time + r.use_time + r.drag_time == r.lifetime


def test_void_object_has_no_lag_or_use():
    r = make_full_record(created=100, first=0, last=0, collected=1000)
    assert r.is_void and r.never_used
    assert r.lag_time == 0
    assert r.use_time == 0
    assert r.drag_time == r.lifetime == 900


def test_integrals_decompose():
    records = [
        make_full_record(created=0, first=100, last=300, collected=500, handle=1),
        make_full_record(created=50, first=0, last=0, collected=400, handle=2),
        make_full_record(created=10, first=10, last=480, collected=500, handle=3),
    ]
    lag = integral_bytes2(records, "lag")
    use = integral_bytes2(records, "use")
    drag = integral_bytes2(records, "drag")
    void = integral_bytes2(records, "void")
    reach = integral_bytes2(records, "reachable")
    # void is the never-used slice of drag; lag+use+drag covers the rest
    assert lag + use + drag == reach
    assert void <= drag
    assert void == 16 * 350  # record 2's whole lifetime


@settings(max_examples=150, deadline=None)
@given(
    created=st.integers(min_value=1, max_value=10 ** 6),
    lag=st.integers(min_value=0, max_value=10 ** 5),
    use=st.integers(min_value=0, max_value=10 ** 5),
    drag=st.integers(min_value=0, max_value=10 ** 5),
    size=st.integers(min_value=8, max_value=10 ** 4),
)
def test_phase_partition_property(created, lag, use, drag, size):
    first = created + lag
    last = first + use
    collected = last + drag
    r = make_full_record(created, first, last, collected, size=size)
    assert r.lag_time + r.use_time + r.drag_time == r.lifetime
    assert r.lag_time >= 0 and r.use_time >= 0 and r.drag_time >= 0


def test_profiler_records_first_use():
    source = """
    class Main {
        public static void main(String[] args) {
            Object o = new Object();
            pad();
            o.hashCode();   // first use
            pad();
            o.hashCode();   // last use
            pad();
            o = null;
            pad();
        }
        static void pad() {
            for (int i = 0; i < 20; i = i + 1) { char[] junk = new char[512]; }
        }
    }
    """
    result = profile_source(source, "Main", interval_bytes=4 * 1024)
    record = [r for r in result.records if r.type_name == "Object"][0]
    assert record.creation_time < record.first_use_time < record.last_use_time
    pad = 20 * 1040
    assert record.lag_time >= pad * 0.9
    assert record.use_time >= pad * 0.9
    assert record.lag_time + record.use_time == record.in_use_time


def test_first_use_roundtrips_through_log(tmp_path):
    from repro.core.logfile import read_log, write_log

    record = make_full_record(created=5, first=9, last=20, collected=44)
    path = tmp_path / "lag.log"
    write_log(path, [record])
    loaded = read_log(path).records[0]
    assert loaded.first_use_time == 9
    assert loaded.lag_time == 4


def test_legacy_log_without_first_use_still_loads():
    data = make_record().to_dict()
    del data["first_use"]
    loaded = ObjectRecord.from_dict(data)
    assert loaded.first_use_time == 0
