"""Phase-1 profiler: trailers, use events, sampling, exclusions."""

from repro.core import DragAnalysis, HeapProfiler, profile_source
from repro.runtime.interpreter import Interpreter
from tests.conftest import compile_app


def profile_body(body, helpers="", interval=8 * 1024, args=None, **kwargs):
    source = (
        "class Main { public static void main(String[] args) { "
        + body
        + " } "
        + helpers
        + " }"
    )
    return profile_source(source, "Main", args=args, interval_bytes=interval, **kwargs)


def records_of_type(result, type_name):
    return [r for r in result.records if r.type_name == type_name]


def test_every_object_gets_logged_exactly_once():
    result = profile_body(
        "for (int i = 0; i < 10; i = i + 1) { Object o = new Object(); }"
    )
    objs = records_of_type(result, "Object")
    assert len(objs) == 10
    assert len({r.handle for r in objs}) == 10


def test_never_used_has_last_use_zero():
    result = profile_body("Object o = new Object();")
    record = records_of_type(result, "Object")[0]
    assert record.never_used
    assert record.last_use_time == 0
    assert record.drag_time == record.collection_time - record.creation_time


def test_use_updates_last_use_time():
    body = """
    Object o = new Object();
    char[] pad = new char[30000];
    o.hashCode();
    char[] pad2 = new char[30000];
    """
    result = profile_body(body)
    record = records_of_type(result, "Object")[0]
    assert not record.never_used
    assert record.last_use_time > record.creation_time
    assert record.collection_time > record.last_use_time


def test_getfield_and_putfield_are_uses():
    source = """
    class Box { int v; }
    class Main {
        public static void main(String[] args) {
            Box b = new Box();
            b.v = 1;
            int x = b.v;
        }
    }
    """
    result = profile_source(source, "Main", interval_bytes=8 * 1024)
    record = [r for r in result.records if r.type_name == "Box"][0]
    assert not record.never_used


def test_array_access_is_a_use_of_the_array_not_the_element():
    body = """
    Object[] arr = new Object[4];
    arr[0] = new Object();
    char[] pad = new char[30000];
    Object o = arr[0];
    """
    result = profile_body(body)
    arr_record = records_of_type(result, "Object[]")[0]
    elem_record = records_of_type(result, "Object")[0]
    assert arr_record.last_use_time > arr_record.creation_time
    # Loading a reference out of the array does not use the element.
    assert elem_record.never_used


def test_monitor_enter_exit_is_a_use():
    body = """
    Object lock = new Object();
    synchronized (lock) { int x = 1; }
    """
    result = profile_body(body)
    record = records_of_type(result, "Object")[0]
    assert not record.never_used


def test_invoking_method_is_a_use_of_receiver_only():
    source = """
    class Sink { void take(Object arg) { } }
    class Main {
        public static void main(String[] args) {
            Sink s = new Sink();
            Object arg = new Object();
            s.take(arg);
        }
    }
    """
    result = profile_source(source, "Main", interval_bytes=8 * 1024)
    sink = [r for r in result.records if r.type_name == "Sink"][0]
    arg = [r for r in result.records if r.type_name == "Object"][0]
    assert not sink.never_used
    assert arg.never_used  # passing as argument is not a use


def test_native_handle_deref_is_a_use():
    body = """
    String s = "x" + 1;
    char[] pad = new char[30000];
    int n = s.length();
    char[] pad2 = new char[30000];
    """
    result = profile_body(body)
    strings = [r for r in records_of_type(result, "String") if not r.excluded]
    assert any(r.last_use_time > r.creation_time for r in strings)


def test_interned_literals_are_excluded():
    result = profile_body('String a = "literal-one"; a.length();')
    labels = [r.type_name for r in result.records if not r.excluded]
    # the interned literal and its char[] never appear in the log
    assert all(
        r.site_kind != "string" for r in result.records
    ), labels


def test_samples_taken_every_interval():
    result = profile_body(
        "for (int i = 0; i < 100; i = i + 1) { char[] junk = new char[1000]; }",
        interval=16 * 1024,
    )
    # ~200KB allocated / 16KB interval => ~12 samples (+ final).
    assert len(result.samples) >= 10
    times = [s.time for s in result.samples]
    assert times == sorted(times)


def test_sampling_interval_controls_precision():
    body = "for (int i = 0; i < 50; i = i + 1) { char[] junk = new char[2000]; }"
    coarse = profile_body(body, interval=64 * 1024)
    fine = profile_body(body, interval=4 * 1024)
    assert len(fine.samples) > len(coarse.samples)
    # Finer sampling means earlier collection times, so no more drag.
    fine_drag = sum(r.drag for r in fine.records)
    coarse_drag = sum(r.drag for r in coarse.records)
    assert fine_drag <= coarse_drag


def test_survivors_logged_at_program_end():
    source = """
    class Main {
        static Object keep;
        public static void main(String[] args) { keep = new Object(); }
    }
    """
    result = profile_source(source, "Main", interval_bytes=8 * 1024)
    record = [r for r in result.records if r.type_name == "Object"][0]
    assert record.survived_to_end
    assert record.collection_time == result.end_time


def test_nested_allocation_site_records_call_chain():
    source = """
    class Main {
        public static void main(String[] args) { outer(); }
        static void outer() { inner(); }
        static void inner() { Object o = new Object(); }
    }
    """
    result = profile_source(source, "Main", interval_bytes=8 * 1024, nesting_depth=4)
    record = [r for r in result.records if r.type_name == "Object"][0]
    chain = list(record.nested_alloc)
    assert chain[0].startswith("Main.inner:")
    assert chain[1].startswith("Main.outer:")
    assert chain[2].startswith("Main.main:")


def test_nesting_depth_is_configurable():
    source = """
    class Main {
        public static void main(String[] args) { a(); }
        static void a() { b(); }
        static void b() { Object o = new Object(); }
    }
    """
    shallow = profile_source(source, "Main", nesting_depth=1)
    record = [r for r in shallow.records if r.type_name == "Object"][0]
    assert len(record.nested_alloc) == 1


def test_last_use_site_recorded():
    source = """
    class Main {
        public static void main(String[] args) {
            Object o = new Object();
            touch(o);
        }
        static void touch(Object o) { o.hashCode(); }
    }
    """
    result = profile_source(source, "Main")
    record = [r for r in result.records if r.type_name == "Object"][0]
    assert record.last_use_frame.startswith("Main.touch:")


def test_trailer_not_counted_in_sizes():
    """Profiled and unprofiled runs see identical clocks and sizes."""
    source = """
    class Main {
        public static void main(String[] args) {
            for (int i = 0; i < 20; i = i + 1) { char[] junk = new char[500]; }
        }
    }
    """
    program = compile_app(source)
    bare = Interpreter(program).run([])
    profiled = profile_source(source, "Main")
    assert profiled.run_result.clock == bare.clock


def test_deep_gc_runs_finalizers_between_collections():
    source = """
    class Res {
        public void finalize() { System.println("fin"); }
    }
    class Main {
        public static void main(String[] args) {
            for (int i = 0; i < 30; i = i + 1) {
                Res r = new Res();
                char[] pad = new char[2000];
            }
        }
    }
    """
    result = profile_source(source, "Main", interval_bytes=8 * 1024)
    # finalizers ran during sampling, not just at program end
    assert result.run_result.stdout.count("fin") == 30
    res_records = [r for r in result.records if r.type_name == "Res"]
    assert len(res_records) == 30
    assert all(not r.survived_to_end for r in res_records)


def test_vm_thrown_exceptions_are_attributed_to_vm_site():
    body = """
    try { Object o = null; o.hashCode(); }
    catch (NullPointerException e) { }
    """
    result = profile_body(body)
    npes = [r for r in result.records if r.type_name == "NullPointerException"]
    assert len(npes) == 1
    assert npes[0].site_label.startswith("<vm>")
