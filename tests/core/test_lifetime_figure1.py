"""Figure 1: the lifetime of an object — creation, last use, drag,
unreachability — walked through end to end on a real profiled run."""

from repro.core import profile_source


def test_figure1_lifetime_phases():
    """One object goes through exactly the Figure-1 phases:

        creation ---- in-use ---- last use ---- drag ---- unreachable
    """
    source = """
    class Main {
        static Object subject;
        public static void main(String[] args) {
            subject = new Object();          // creation
            pad();
            subject.hashCode();              // uses...
            pad();
            subject.hashCode();              // ...last use
            pad();
            pad();
            subject = null;                  // becomes unreachable
            pad();
        }
        static void pad() {
            for (int i = 0; i < 20; i = i + 1) { char[] junk = new char[512]; }
        }
    }
    """
    result = profile_source(source, "Main", interval_bytes=4 * 1024)
    record = [r for r in result.records if r.type_name == "Object"][0]

    # Phases are ordered and the object did not survive to program end.
    assert 0 < record.creation_time < record.last_use_time < record.collection_time
    assert not record.survived_to_end

    # In-use spans roughly the two pad() calls between creation and last
    # use (~2 * 20 * 520 bytes); drag spans the two pads before the null
    # assignment plus collection latency (at most drag + one interval).
    pad_bytes = 20 * 1040  # char[512] = align(12 + 2*512) = 1040 bytes
    assert record.in_use_time >= 2 * pad_bytes * 0.9
    assert record.drag_time >= 2 * pad_bytes * 0.9
    assert record.drag_time <= 3 * pad_bytes + 4 * 1024

    # Drag as defined: reachable-but-not-in-use, and the space-time
    # product scales with size.
    assert record.drag == record.size * record.drag_time
    assert record.lifetime == record.in_use_time + record.drag_time


def test_figure1_never_used_object_is_all_drag():
    source = """
    class Main {
        static Object subject;
        public static void main(String[] args) {
            subject = new Object();
            pad();
            subject = null;
            pad();
        }
        static void pad() {
            for (int i = 0; i < 20; i = i + 1) { char[] junk = new char[512]; }
        }
    }
    """
    result = profile_source(source, "Main", interval_bytes=4 * 1024)
    record = [r for r in result.records if r.type_name == "Object"][0]
    assert record.never_used
    assert record.in_use_time == 0
    assert record.drag_time == record.lifetime
