"""Phase-2 analyzer: partitions, drag sums, sorting, never-used sites."""

from repro.core import DragAnalysis
from repro.core.trailer import ObjectRecord


def make_record(
    handle=1,
    type_name="Object",
    size=16,
    created=100,
    last_use=0,
    collected=1000,
    site_label="App.m:1",
    nested=None,
    use_frame=None,
    site_lib=False,
    excluded=False,
):
    return ObjectRecord(
        handle=handle,
        type_name=type_name,
        size=size,
        creation_time=created,
        last_use_time=last_use,
        collection_time=collected,
        alloc_site=0,
        site_label=site_label,
        site_kind="new",
        site_is_library=site_lib,
        nested_alloc=tuple(nested or (site_label,)),
        last_use_frame=use_frame,
        last_use_chain=None,
        excluded=excluded,
        survived_to_end=False,
    )


def test_drag_of_used_object():
    r = make_record(created=100, last_use=400, collected=1000, size=10)
    assert r.drag_time == 600
    assert r.drag == 6000
    assert r.in_use_time == 300


def test_drag_of_never_used_object_spans_lifetime():
    r = make_record(created=100, last_use=0, collected=1000, size=10)
    assert r.never_used
    assert r.drag_time == 900
    assert r.drag == 9000


def test_groups_by_site_label():
    records = [
        make_record(handle=1, site_label="A.m:1"),
        make_record(handle=2, site_label="A.m:1"),
        make_record(handle=3, site_label="B.n:9"),
    ]
    analysis = DragAnalysis(records)
    assert set(analysis.by_site) == {"A.m:1", "B.n:9"}
    assert analysis.by_site["A.m:1"].count == 2


def test_sites_sorted_by_drag_descending():
    records = [
        make_record(handle=1, site_label="small", size=1, collected=200),
        make_record(handle=2, site_label="big", size=1000, collected=100000),
    ]
    analysis = DragAnalysis(records)
    assert [g.key for g in analysis.sorted_sites()] == ["big", "small"]


def test_total_drag_is_sum_over_groups():
    records = [
        make_record(handle=i, site_label=f"s{i % 3}", collected=500 + i)
        for i in range(12)
    ]
    analysis = DragAnalysis(records)
    assert analysis.total_drag == sum(g.total_drag for g in analysis.by_site.values())


def test_nested_partition_is_finer_than_site_partition():
    records = [
        make_record(handle=1, site_label="Lib.alloc:5", nested=("Lib.alloc:5", "App.a:10")),
        make_record(handle=2, site_label="Lib.alloc:5", nested=("Lib.alloc:5", "App.b:20")),
    ]
    analysis = DragAnalysis(records)
    assert len(analysis.by_site) == 1
    assert len(analysis.by_nested) == 2


def test_partition_by_last_use_site():
    records = [
        make_record(handle=1, last_use=150, use_frame="App.use:3"),
        make_record(handle=2, last_use=150, use_frame="App.use:3"),
        make_record(handle=3, last_use=150, use_frame="App.other:7"),
    ]
    analysis = DragAnalysis(records)
    group = analysis.by_site["App.m:1"]
    parts = group.partition_by_last_use()
    assert parts["App.use:3"].count == 2
    assert parts["App.other:7"].count == 1


def test_never_used_sites_only_lists_fully_never_used():
    records = [
        make_record(handle=1, site_label="pure", last_use=0),
        make_record(handle=2, site_label="mixed", last_use=0),
        make_record(handle=3, site_label="mixed", last_use=500),
    ]
    analysis = DragAnalysis(records)
    assert [g.key for g in analysis.never_used_sites()] == ["pure"]


def test_excluded_records_dropped():
    records = [
        make_record(handle=1, excluded=True),
        make_record(handle=2),
    ]
    analysis = DragAnalysis(records)
    assert analysis.object_count == 1


def test_library_filter():
    records = [
        make_record(handle=1, site_lib=True, site_label="Lib.x:1"),
        make_record(handle=2, site_label="App.y:2"),
    ]
    app_only = DragAnalysis(records, include_library_sites=False)
    assert set(app_only.by_site) == {"App.y:2"}
    both = DragAnalysis(records)
    assert len(both.by_site) == 2


def test_never_used_fraction():
    records = [
        make_record(handle=1, last_use=0, size=10, created=0, collected=100),
        make_record(handle=2, last_use=50, size=10, created=0, collected=100),
    ]
    analysis = DragAnalysis(records)
    group = analysis.by_site["App.m:1"]
    # drags: 1000 (never-used) and 500 -> fraction 2/3
    assert abs(group.never_used_fraction - (1000 / 1500)) < 1e-9


def test_sorting_is_deterministic_under_ties():
    records = [
        make_record(handle=1, site_label="zeta"),
        make_record(handle=2, site_label="alpha"),
    ]
    analysis = DragAnalysis(records)
    assert [g.key for g in analysis.sorted_sites()] == ["alpha", "zeta"]
