"""Unit tests for the byte-threshold allocation sampler.

The sampler is the statistical core of ``--sample-bytes``: every
downstream weight-corrected estimate is only as sound as the
inclusion-probability math and the determinism guarantees here.
"""

import math
import random

import pytest

from repro.core.sampler import ByteSampler, inclusion_probability


def test_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        ByteSampler(0)
    with pytest.raises(ValueError):
        ByteSampler(-5)


def test_full_rate_always_samples_with_weight_one():
    """N <= 1 keeps every allocation at weight exactly 1.0 — the
    bit-identity guarantee for ``--sample-bytes 1``."""
    sampler = ByteSampler(1, seed=123)
    for size in (0, 1, 7, 4096, 10**9):
        assert sampler.sample(size) == 1.0
    assert sampler.sampled == 5
    assert sampler.skipped == 0


def test_full_rate_never_consults_rng():
    """Two full-rate samplers with different seeds behave identically,
    because N=1 never draws — the RNG cannot perturb a full-rate run."""
    a, b = ByteSampler(1, seed=0), ByteSampler(1, seed=999)
    sizes = [random.Random(4).randrange(1, 5000) for _ in range(200)]
    assert [a.sample(s) for s in sizes] == [b.sample(s) for s in sizes]


def test_deterministic_per_seed():
    sizes = [random.Random(7).randrange(1, 2000) for _ in range(5000)]
    a = [ByteSampler(1000, seed=42).sample(s) for s in sizes]
    b = [ByteSampler(1000, seed=42).sample(s) for s in sizes]
    c = [ByteSampler(1000, seed=43).sample(s) for s in sizes]
    assert a == b
    assert a != c  # a different seed picks a different subset


def test_inclusion_probability_math():
    """p(s) = 1 - (1 - 1/N)^s, exactly; monotone in s; 1.0 at N=1."""
    assert inclusion_probability(100, 1) == 1.0
    assert inclusion_probability(0, 1000) == 0.0
    n = 1000
    for size in (1, 10, 100, 1000, 100000):
        expected = 1.0 - (1.0 - 1.0 / n) ** size
        assert inclusion_probability(size, n) == pytest.approx(expected, rel=1e-12)
    probs = [inclusion_probability(s, n) for s in (1, 10, 100, 1000, 10000)]
    assert probs == sorted(probs)
    # huge objects are near-certain to be sampled
    assert inclusion_probability(10 * n, n) > 0.9999


def test_weight_is_inverse_inclusion_probability():
    sampler = ByteSampler(500, seed=1)
    for _ in range(20000):
        size = 64
        w = sampler.sample(size)
        if w:
            assert w == pytest.approx(1.0 / inclusion_probability(size, 500))


def test_unbiased_byte_estimate():
    """The Horvitz-Thompson estimate sum(w_i * s_i) over sampled
    allocations converges to the true allocated bytes."""
    rng = random.Random(11)
    sizes = [rng.randrange(8, 1024) for _ in range(60000)]
    truth = sum(sizes)
    sampler = ByteSampler(2000, seed=3)
    est = 0.0
    for s in sizes:
        w = sampler.sample(s)
        if w:
            est += w * s
    assert sampler.sampled < len(sizes) * 0.3  # it really is sampling
    assert est == pytest.approx(truth, rel=0.05)


def test_unbiased_count_estimate():
    """sum(w_i) estimates the allocation count, size-stratified."""
    rng = random.Random(12)
    sizes = [rng.choice((16, 16, 16, 4096)) for _ in range(40000)]
    sampler = ByteSampler(1500, seed=9)
    est = sum(w for w in (sampler.sample(s) for s in sizes) if w)
    assert est == pytest.approx(len(sizes), rel=0.08)


def test_sampling_rate_tracks_bytes_not_objects():
    """Large objects are kept near-certainly; tiny ones rarely — the
    defining property of byte-weighted (vs uniform) sampling."""
    sampler = ByteSampler(1000, seed=5)
    big_kept = sum(1 for _ in range(500) if sampler.sample(20000))
    assert big_kept == 500  # p > 0.999999 each
    sampler = ByteSampler(1000, seed=5)
    tiny_kept = sum(1 for _ in range(500) if sampler.sample(1))
    assert tiny_kept < 50


def test_gap_distribution_mean():
    """Skip gaps are Geometric(1/N) with mean N bytes: over many
    samples the sampled fraction of the byte stream approaches 1/N
    for unit-size allocations."""
    n = 200
    sampler = ByteSampler(n, seed=21)
    total = 100000
    kept = sum(1 for _ in range(total) if sampler.sample(1))
    assert kept == pytest.approx(total / n, rel=0.2)


def test_zero_size_allocation_is_skipped():
    sampler = ByteSampler(100, seed=0)
    assert sampler.sample(0) == 0.0
    assert sampler.skipped == 1
