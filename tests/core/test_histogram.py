"""§3.4 lifetime-characteristic partitions: per-site histograms of drag
time, in-use time, and collection time."""

from repro.core import DragAnalysis, drag_report, profile_source
from repro.core.analyzer import Histogram, SiteGroup
from tests.core.test_analyzer import make_record


def group_of(records):
    g = SiteGroup("site")
    for r in records:
        g.add(r)
    return g


def test_histogram_buckets_and_stats():
    h = Histogram("drag_time", [0, 10, 20, 30, 100], buckets=4)
    assert h.minimum == 0
    assert h.maximum == 100
    assert h.median == 20
    assert sum(h.counts) == 5
    assert len(h.counts) == 4
    assert h.edges[0] == 0


def test_histogram_empty():
    h = Histogram("drag_time", [], buckets=4)
    assert h.minimum is None and h.median is None and h.mean is None
    assert "(empty)" in h.summary()


def test_histogram_single_value():
    h = Histogram("drag_time", [42], buckets=4)
    assert h.minimum == h.maximum == h.median == 42
    assert sum(h.counts) == 1


def test_group_breakdown_attributes():
    records = [
        make_record(handle=i, created=0, last_use=100 * i, collected=1000 + i)
        for i in range(1, 9)
    ]
    group = group_of(records)
    for attr in ("drag_time", "in_use_time", "collection_time", "lifetime", "drag"):
        h = group.lifetime_breakdown(attr)
        assert sum(h.counts) == len(records), attr
        assert h.attr == attr


def test_summary_format():
    h = Histogram("in_use_time", [5, 5, 10, 80], buckets=2)
    text = h.summary()
    assert text.startswith("in_use_time:")
    assert "median=" in text
    assert "):" in text  # bucket rows


def test_report_includes_breakdown_line():
    source = """
    class Main {
        public static void main(String[] args) {
            for (int i = 0; i < 15; i = i + 1) {
                char[] junk = new char[800];
                junk[0] = 'x';
            }
        }
    }
    """
    result = profile_source(source, "Main", interval_bytes=2048)
    analysis = DragAnalysis(result.records)
    text = drag_report(analysis, top=2, interval_bytes=2048)
    assert "drag_time: min=" in text
