"""Drag report rendering and the ASCII heap chart."""

from repro.core import DragAnalysis, drag_report, profile_source
from repro.core.integrals import HeapCurve, curve_from_records
from repro.core.report import heap_profile_chart
from tests.core.test_analyzer import make_record

SOURCE = """
class Main {
    public static void main(String[] args) {
        char[] wasted = new char[4000];
        for (int i = 0; i < 30; i = i + 1) { char[] junk = new char[300]; }
        System.println("done");
    }
}
"""


def test_report_contains_totals_and_sites():
    result = profile_source(SOURCE, "Main", interval_bytes=4096)
    analysis = DragAnalysis(result.records)
    text = drag_report(analysis, top=3, interval_bytes=4096, program=result.program)
    assert "=== Drag report ===" in text
    assert "total drag" in text
    assert "Main.main" in text
    assert "pattern:" in text
    assert "suggest:" in text


def test_report_flags_never_used_sure_bets():
    result = profile_source(SOURCE, "Main", interval_bytes=4096)
    analysis = DragAnalysis(result.records)
    text = drag_report(analysis, top=5, interval_bytes=4096)
    assert "sure bets" in text
    assert "all never used" in text


def test_report_nested_mode():
    result = profile_source(SOURCE, "Main", interval_bytes=4096)
    analysis = DragAnalysis(result.records)
    text = drag_report(analysis, top=3, interval_bytes=4096, nested=True)
    assert "nested allocation sites" in text


def test_report_shows_drag_share_percentages():
    result = profile_source(SOURCE, "Main", interval_bytes=4096)
    analysis = DragAnalysis(result.records)
    text = drag_report(analysis, top=3, interval_bytes=4096)
    assert "% of total" in text


def test_report_last_use_partition_lines():
    source = """
    class Main {
        public static void main(String[] args) {
            char[] buffer = new char[3000];
            touch(buffer);
            for (int i = 0; i < 30; i = i + 1) { char[] junk = new char[300]; }
        }
        static void touch(char[] b) { b[0] = 'x'; }
    }
    """
    result = profile_source(source, "Main", interval_bytes=4096)
    analysis = DragAnalysis(result.records)
    text = drag_report(analysis, top=2, interval_bytes=4096)
    assert "last-use Main.touch" in text


def test_chart_renders_curves():
    records = [
        make_record(handle=i, created=i * 1000, collected=i * 1000 + 50000, size=4096)
        for i in range(10)
    ]
    curve = curve_from_records(records, "reachable")
    text = heap_profile_chart({"#": curve}, width=40, height=8)
    lines = text.splitlines()
    assert len(lines) == 8 + 2  # grid + separator + axis label
    assert any("#" in line for line in lines[:8])
    assert "MB allocated" in lines[-1]


def test_chart_handles_empty_input():
    assert "(no curves)" in heap_profile_chart({})
    empty = HeapCurve([], [])
    assert "(empty profile)" in heap_profile_chart({"#": empty})
