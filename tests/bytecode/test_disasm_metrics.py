"""Disassembler output and Table-1 source metrics."""

from repro.bytecode.disasm import disassemble_method, disassemble_program
from repro.bytecode.program import align
from repro.mjava.metrics import count_classes, count_statements, source_metrics
from repro.mjava.parser import parse_program
from repro.runtime.library import link
from tests.conftest import compile_app

SOURCE = """
class Main {
    public static void main(String[] args) {
        int x = 1 + 2;
        Object o = new Object();
        System.printInt(x);
    }
}
"""


def test_disassemble_method_lists_instructions():
    program = compile_app(SOURCE)
    text = disassemble_method(program.classes["Main"].methods["main"])
    assert "Main.main" in text
    assert "NEWINIT" in text
    assert "CONST 1" in text
    # pc numbers are sequential from 0
    assert "   0:" in text


def test_disassemble_method_shows_sites():
    program = compile_app(SOURCE)
    text = disassemble_method(program.classes["Main"].methods["main"])
    assert "; site" in text


def test_disassemble_program_covers_library_and_app():
    program = compile_app(SOURCE)
    text = disassemble_program(program)
    assert "class Main" in text
    assert "class Vector" in text
    assert "native String.length" in text or "native" in text


def test_disassemble_exception_table():
    program = compile_app(
        "class Main { public static void main(String[] args) { "
        "try { int x = 1 / 0; } catch (ArithmeticException e) { } } }"
    )
    text = disassemble_method(program.classes["Main"].methods["main"])
    assert "catch[" in text
    assert "ArithmeticException" in text


# -- metrics -------------------------------------------------------------------------


def test_count_statements_counts_stmts_not_blocks():
    program = parse_program(
        "class A { void m() { { int x = 1; } if (true) { x = 2; } } }"
    )
    # VarDecl + If + Assign = 3 (blocks excluded)
    assert count_statements(program) == 3


def test_field_declarations_count_as_statements():
    program = parse_program("class A { int x; int y; }")
    assert count_statements(program) == 2


def test_library_classes_excluded_by_default():
    linked = link("class Main { public static void main(String[] args) { } }")
    app_only = count_statements(linked)
    with_lib = count_statements(linked, include_library=True)
    assert app_only == 0
    assert with_lib > 100
    assert count_classes(linked) == 1
    assert count_classes(linked, include_library=True) > 15


def test_source_metrics_tuple():
    classes, stmts = source_metrics(
        "class A { int f; void m() { f = 1; } } class B { }"
    )
    assert classes == 2
    assert stmts == 2  # field decl + assignment


def test_align_reexport_sanity():
    assert align(13) == 16
