"""The example scripts must keep running end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "Figure 1" in result.stdout
    assert "=== Drag report ===" in result.stdout


def test_leak_hunt():
    result = run_example("leak_hunt.py")
    assert result.returncode == 0, result.stderr
    assert "suggested transformation: assign-null" in result.stdout
    assert "drag saving" in result.stdout


def test_auto_optimizer():
    result = run_example("auto_optimizer.py")
    assert result.returncode == 0, result.stderr
    assert "APPLIED" in result.stdout
    assert "space saving" in result.stdout
    assert "class Main" in result.stdout


def test_gc_comparison():
    result = run_example("gc_comparison.py")
    assert result.returncode == 0, result.stderr
    assert "mark-sweep" in result.stdout
    assert "generational" in result.stdout


@pytest.mark.slow
def test_heap_profile_charts_single_benchmark():
    result = run_example("heap_profile_charts.py", "juru")
    assert result.returncode == 0, result.stderr
    assert "original run" in result.stdout
    assert "revised run" in result.stdout
    assert "MB allocated" in result.stdout
