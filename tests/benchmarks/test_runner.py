"""Benchmark runner unit tests: compilation, savings rows, cost model,
Figure-2 series."""

import pytest

from repro.benchmarks import get_benchmark, run_pair
from repro.benchmarks.registry import Benchmark
from repro.benchmarks.runner import (
    compile_benchmark,
    figure2_series,
    run_runtime_pair,
    simulated_runtime,
)


@pytest.fixture(scope="module")
def juru_run():
    return run_pair(get_benchmark("juru"), "primary")


def test_args_for_validates_input_name():
    bench = get_benchmark("db")
    assert bench.args_for("primary") == bench.primary_args
    assert bench.args_for("alternate") == bench.alternate_args
    with pytest.raises(ValueError):
        bench.args_for("tertiary")


def test_compile_benchmark_links_library():
    program = compile_benchmark(get_benchmark("juru"), revised=False)
    assert "Vector" in program.classes
    assert "Juru" in program.classes
    assert program.classes["Vector"].is_library
    assert not program.classes["Juru"].is_library


def test_revised_library_overrides_applied():
    bench = get_benchmark("jess")
    original = compile_benchmark(bench, revised=False)
    revised = compile_benchmark(bench, revised=True)
    # the original Locale's <clinit> allocates constants; the revised
    # JDK's constants are null so its <clinit> has no NEWINIT
    from repro.bytecode.opcodes import Op

    orig_clinit = original.classes["Locale"].clinit
    rev_clinit = revised.classes["Locale"].clinit
    assert any(i.op == Op.NEWINIT for i in orig_clinit.code)
    assert rev_clinit is None or not any(i.op == Op.NEWINIT for i in rev_clinit.code)


def test_savings_row_consistency(juru_run):
    s = juru_run.savings
    assert s.original_reachable >= s.original_in_use > 0
    assert s.reduced_reachable >= s.reduced_in_use > 0
    reduction = s.original_reachable - s.reduced_reachable
    drag = s.original_reachable - s.original_in_use
    assert abs(s.space_saving_pct - 100 * reduction / s.original_reachable) < 1e-9
    assert abs(s.drag_saving_pct - 100 * reduction / drag) < 1e-9


def test_figure2_series_has_four_curves(juru_run):
    curves = figure2_series(juru_run)
    assert set(curves) == {
        "original_reachable",
        "original_in_use",
        "revised_reachable",
        "revised_in_use",
    }
    end = juru_run.original.end_time
    mid = end // 2
    assert curves["original_reachable"].value_at(mid) >= curves[
        "original_in_use"
    ].value_at(mid)


def test_simulated_runtime_components():
    class FakeStats:
        objects_allocated = 10
        bytes_allocated = 1000
        objects_marked = 5
        objects_swept = 3
        finalizers_run = 1

    class FakeResult:
        instructions = 100
        heap_stats = FakeStats()

    cost = simulated_runtime(FakeResult())
    expected = 100 * 1.0 + 10 * 12.0 + 1000 * 0.02 + 5 * 3.0 + 3 * 1.5 + 1 * 40.0
    assert cost == expected


def test_runtime_pair_raises_on_output_divergence():
    bad = Benchmark(
        name="bad",
        description="diverges",
        main_class="Main",
        original='class Main { public static void main(String[] args) { System.println("a"); } }',
        revised='class Main { public static void main(String[] args) { System.println("b"); } }',
        primary_args=[],
        alternate_args=[],
        rewritings=[],
    )
    with pytest.raises(AssertionError):
        run_runtime_pair(bad)


def test_runtime_pair_reports_costs(juru_run):
    run = run_runtime_pair(get_benchmark("juru"))
    assert run.original_runtime > 0
    assert run.revised_runtime > 0
    assert -100 < run.saving_pct < 100
