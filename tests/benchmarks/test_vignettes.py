"""The §3.4 vignettes: the specific drag structures the paper describes
for juru (3.4.1), raytrace (3.4.2), and jack (3.4.3), verified on our
models through the actual tool."""

import pytest

from repro.core import DragAnalysis
from repro.core.anchor import anchor_site
from repro.core.patterns import LifetimePattern, classify_group, suggest_transformation
from repro.benchmarks import get_benchmark
from repro.benchmarks.runner import compile_benchmark
from repro.core.profiler import profile_program


@pytest.fixture(scope="module")
def profiles():
    out = {}
    for name in ("juru", "raytrace", "jack", "db"):
        bench = get_benchmark(name)
        program = compile_benchmark(bench, revised=False)
        out[name] = (
            bench,
            profile_program(program, bench.primary_args, interval_bytes=bench.interval_bytes),
        )
    return out


def top_app_site(profile):
    analysis = DragAnalysis(profile.records, include_library_sites=False)
    return analysis, analysis.sorted_sites(1)[0]


def test_juru_top_site_is_the_buffer_and_suggests_assign_null(profiles):
    """§3.4.1: the largest drag site allocates large char arrays held by
    a local; the pattern is LARGE_DRAG → assigning null."""
    bench, profile = profiles["juru"]
    analysis, group = top_app_site(profile)
    assert group.type_names == ["char[]"]
    assert "indexDocument" in str(group.key)
    pattern = classify_group(group, interval_bytes=bench.interval_bytes)
    assert pattern is LifetimePattern.LARGE_DRAG
    assert suggest_transformation(pattern) == "assign-null"
    # objects at the site are big (the paper's were 100K chars; ours are
    # scaled) and each drags for a while after its last use
    assert all(r.size > 8000 for r in group.records)


def test_raytrace_17_detail_sites_never_used(profiles):
    """§3.4.2: 17 sites whose objects are only used in their
    constructors — pattern 1 → dead-code removal."""
    bench, profile = profiles["raytrace"]
    analysis = DragAnalysis(profile.records, include_library_sites=False)
    detail_sites = [
        g
        for g in analysis.by_site.values()
        if "Scene.<init>" in str(g.key) and "Detail" in g.type_names
    ]
    assert len(detail_sites) == 17
    for group in detail_sites:
        pattern = classify_group(group, interval_bytes=bench.interval_bytes)
        assert pattern is LifetimePattern.ALL_NEVER_USED
        assert suggest_transformation(pattern) == "dead-code-removal"
    # similar drag at every site, as the paper reports (4.77 MB^2 each)
    drags = sorted(g.total_drag for g in detail_sites)
    assert drags[-1] < drags[0] * 1.5


def test_jack_ctor_collection_sites_mostly_never_used(profiles):
    """§3.4.3: the three biggest drag sites are all in one constructor
    and ≥97% of their drag is never-used → lazy allocation."""
    bench, profile = profiles["jack"]
    # The raw allocation happens inside library code (Vector/HashTable
    # constructors allocating their backing arrays) — exactly why the
    # paper partitions by *nested* allocation site and walks to the
    # anchor. Group by nested chain, library sites included.
    analysis = DragAnalysis(profile.records)
    top3 = analysis.sorted_nested(3)
    for group in top3:
        chain = group.key
        assert any("NfaBuilder.<init>" in frame for frame in chain), chain
        assert group.never_used_fraction >= 0.80
        pattern = classify_group(group, interval_bytes=bench.interval_bytes)
        assert pattern in (
            LifetimePattern.MOSTLY_NEVER_USED,
            LifetimePattern.ALL_NEVER_USED,
        )


def test_jack_anchor_walks_out_of_library_code(profiles):
    """§3.4: the bottom of the nested site is library code (Vector's
    internal array allocation); the anchor is the application frame."""
    bench, profile = profiles["jack"]
    analysis = DragAnalysis(profile.records)  # include library sites
    vector_arrays = [
        g
        for g in analysis.by_site.values()
        if "Vector.<init>" in str(g.key) and g.total_drag > 0
    ]
    assert vector_arrays
    anchor = anchor_site(max(vector_arrays, key=lambda g: g.total_drag), profile.program)
    assert anchor is not None
    assert anchor.startswith("NfaBuilder.<init>") or anchor.startswith("Jack.")


def test_db_repository_matches_pattern4(profiles):
    """§3.4 pattern 4: db's repository records have high drag variance
    and no suggested transformation."""
    bench, profile = profiles["db"]
    analysis = DragAnalysis(profile.records, include_library_sites=False)
    repo_sites = [
        g for g in analysis.sorted_sites() if "DbRecord" in g.type_names or (
            "char[]" in g.type_names and "DbRecord.<init>" in str(g.key))
    ]
    assert repo_sites
    group = max(repo_sites, key=lambda g: g.total_drag)
    pattern = classify_group(group, interval_bytes=bench.interval_bytes)
    assert pattern in (LifetimePattern.HIGH_VARIANCE, LifetimePattern.UNCLASSIFIED)
    assert suggest_transformation(pattern) is None
