"""Expected-shape criteria (DESIGN.md §4): the qualitative features of
Tables 2-4 and Figure 2 that define a successful reproduction."""

import pytest

from repro.benchmarks import all_benchmarks, run_pair
from repro.benchmarks.runner import figure2_series, run_runtime_pair
from repro.core.integrals import integral_bytes2


@pytest.fixture(scope="module")
def runs():
    return {name: run_pair(bench, "primary") for name, bench in all_benchmarks().items()}


def test_all_outputs_match(runs):
    for name, run in runs.items():
        assert run.outputs_match(), name


def test_savings_are_nonnegative_everywhere(runs):
    for name, run in runs.items():
        assert run.savings.space_saving_pct >= 0, name
        assert run.savings.drag_saving_pct >= 0, name


def test_db_has_zero_savings(runs):
    assert runs["db"].savings.space_saving_pct == 0.0
    assert runs["db"].savings.drag_saving_pct == 0.0


def test_jack_has_largest_space_saving(runs):
    jack = runs["jack"].savings.space_saving_pct
    for name, run in runs.items():
        if name != "jack":
            assert run.savings.space_saving_pct < jack, name


def test_mc_drag_saving_exceeds_100_percent(runs):
    """§4.1: 'This leads to 168% savings of drag, since we saved even
    more than the original drag' — reduced reachable dips below the
    original in-use integral."""
    s = runs["mc"].savings
    assert s.drag_saving_pct > 100.0
    assert s.reduced_reachable < s.original_in_use


def test_ordering_matches_paper_qualitatively(runs):
    """jack >> javac in both ratios; raytrace among the top space
    savers; jess and javac in the modest band."""
    space = {n: r.savings.space_saving_pct for n, r in runs.items()}
    drag = {n: r.savings.drag_saving_pct for n, r in runs.items()}
    assert space["jack"] > 3 * space["javac"]
    assert drag["jack"] > 2 * drag["javac"] or drag["jack"] > 60
    assert space["raytrace"] > space["jess"]
    assert drag["euler"] > 50
    assert 0 < space["jess"] < 25
    assert 0 < space["juru"] < 25


def test_average_space_saving_in_paper_band(runs):
    """§4.1: 'The average space savings for all the benchmarks
    (including db) is 14%' — we accept a generous band around it."""
    avg = sum(r.savings.space_saving_pct for r in runs.values()) / len(runs)
    assert 8.0 <= avg <= 30.0, avg


def test_reachable_dominates_in_use_in_every_profile(runs):
    for name, run in runs.items():
        for profile in (run.original, run.revised):
            reach = integral_bytes2(profile.records, "reachable")
            in_use = integral_bytes2(profile.records, "in_use")
            assert reach >= in_use, name


# -- Figure 2 qualitative features -------------------------------------------------


def test_figure2_euler_revised_reachable_tracks_in_use(runs):
    """§4.1: 'the optimized heap size almost coincides with the in-use
    object size' for euler."""
    curves = figure2_series(runs["euler"])
    reach = integral_bytes2(runs["euler"].revised.records, "reachable")
    in_use = integral_bytes2(runs["euler"].revised.records, "in_use")
    assert in_use > 0.85 * reach
    del curves


def test_figure2_raytrace_constant_offset_reduction(runs):
    """§4.1: raytrace's reachable curve drops 'by an almost constant
    size, and the in-use object size remains the same'."""
    run = runs["raytrace"]
    curves = figure2_series(run)
    end = min(run.original.end_time, run.revised.end_time)
    offsets = []
    for frac in (0.4, 0.6, 0.8):
        t = int(end * frac)
        offsets.append(
            curves["original_reachable"].value_at(t)
            - curves["revised_reachable"].value_at(int(run.revised.end_time * frac))
        )
    assert all(o > 0 for o in offsets)
    # roughly constant: max/min within 2x
    assert max(offsets) < 2 * max(1, min(offsets))
    # in-use essentially unchanged
    in_use_orig = integral_bytes2(run.original.records, "in_use")
    in_use_rev = integral_bytes2(run.revised.records, "in_use")
    assert abs(in_use_orig - in_use_rev) < 0.15 * in_use_orig


def test_figure2_analyzer_savings_start_after_phase1(runs):
    """§4.1: analyzer's reachable heap 'is reduced only after
    allocating the first 78MB' — i.e. after phase 1 (scaled)."""
    run = runs["analyzer"]
    curves = figure2_series(run)
    early_orig = curves["original_reachable"].value_at(int(run.original.end_time * 0.10))
    early_rev = curves["revised_reachable"].value_at(int(run.revised.end_time * 0.10))
    late_orig = curves["original_reachable"].value_at(int(run.original.end_time * 0.7))
    late_rev = curves["revised_reachable"].value_at(int(run.revised.end_time * 0.7))
    # early: nearly identical; late: clearly reduced
    assert abs(early_orig - early_rev) < 0.15 * max(early_orig, 1)
    assert late_rev < 0.85 * late_orig


def test_figure2_juru_is_cyclic(runs):
    """§4.1: 'juru acts in cycles, with the same reduction on every
    cycle' — the original reachable curve oscillates."""
    run = runs["juru"]
    curve = figure2_series(run)["original_reachable"]
    end = run.original.end_time
    samples = [curve.value_at(int(end * f / 40)) for f in range(8, 40)]
    rises = sum(1 for a, b in zip(samples, samples[1:]) if b > a)
    falls = sum(1 for a, b in zip(samples, samples[1:]) if b < a)
    assert rises >= 4 and falls >= 4


# -- Table 4 direction ---------------------------------------------------------------


def test_runtime_savings_direction():
    """Table 4: small runtime effects; clearly positive for jack (fewer
    allocations) and never a large regression anywhere."""
    benches = all_benchmarks()
    jack = run_runtime_pair(benches["jack"])
    assert jack.saving_pct > 0.2
    for name in ("juru", "mc", "raytrace"):
        run = run_runtime_pair(benches[name])
        assert run.saving_pct > -1.0, name
