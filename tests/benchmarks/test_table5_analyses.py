"""Table 5's "Expected Analysis" column, executed.

For every rewriting the paper lists, the named Section-5 analysis must
actually license that rewrite on our benchmark source — liveness for
juru/analyzer's locals, array liveness for jess/euler/mc, usage for
jess's statics, indirect usage for javac, call-graph refinement (R) for
raytrace, purity/min-code-insertion for jack.
"""

import pytest

from repro.analysis.array_liveness import logical_size_pairs
from repro.analysis.callgraph import build_call_graph
from repro.analysis.indirect_usage import indirectly_unused_fields
from repro.analysis.lazy_points import first_use_sites
from repro.analysis.purity import ctor_purity
from repro.analysis.usage import field_usage
from repro.benchmarks import get_benchmark
from repro.benchmarks.runner import compile_benchmark
from repro.mjava.sema import ClassTable
from repro.runtime.library import link


def table_of(name):
    return ClassTable(link(get_benchmark(name).original))


def compiled_of(name):
    return compile_benchmark(get_benchmark(name), revised=False)


def test_juru_liveness_licenses_buffer_nulling():
    """juru: assigning null / local variable / liveness."""
    from repro.transform.assign_null import null_insertion_candidates

    program = compiled_of("juru")
    method = program.classes["Juru"].methods["indexDocument"]
    candidates = null_insertion_candidates(method, "buffer")
    assert candidates, "liveness must find a safe nulling point for buffer"


def test_jack_min_code_insertion_sites():
    """jack: lazy allocation / package / min. code insertion — the
    analysis enumerates the possible first uses the null checks guard,
    and the constructors are lazy-safe."""
    table = table_of("jack")
    for field in ("expansion", "firstSet", "followSet"):
        sites = first_use_sites(table, "NfaBuilder", field)
        assert sites, field
        assert all(s.class_name == "NfaBuilder" for s in sites)
    assert ctor_purity(table, "Vector").lazy_safe
    assert ctor_purity(table, "HashTable").lazy_safe


def test_raytrace_call_graph_refinement():
    """raytrace: code removal / private array / (R) — the get method is
    unreachable, so the refined usage analysis shows the field unread,
    and the Detail constructor is pure."""
    program = compiled_of("raytrace")
    cg = build_call_graph(program)
    assert not cg.is_reachable("Scene", "getDetail")
    refined = field_usage(program, cg.reachable_compiled_methods())
    # the only reachable 'reads' of details are the ctor's own element
    # stores; getDetail's real read does not count under (R)
    whole = field_usage(program)
    assert whole.is_instance_field_read("Scene", "details")
    table = table_of("raytrace")
    assert ctor_purity(table, "Detail").pure


def test_jess_array_liveness_finds_factlist_pair():
    """jess: assigning null / private array / array liveness."""
    table = table_of("jess")
    assert ("data", "count") in logical_size_pairs(table, "FactList")


def test_jess_usage_finds_dead_statics():
    """jess: code removal / private static + public static final (JDK)."""
    program = compiled_of("jess")
    usage = field_usage(program)
    dead = set(usage.written_never_read_statics())
    assert ("Engine", "traceBuffer") in dead
    assert ("Locale", "ENGLISH") in dead  # the JDK-rewrite target


def test_javac_indirect_usage_finds_banner():
    """javac: code removal / protected / indirect-usage — banner is only
    copied into bannerCopy, which is never read."""
    program = compiled_of("javac")
    usage = field_usage(program)
    # bannerCopy is directly dead; banner only indirectly
    assert ("CompilationUnit", "bannerCopy") in set(
        usage.written_never_read_instance_fields()
    )
    indirect = indirectly_unused_fields(program, usage)
    assert ("CompilationUnit", "banner") in indirect


def test_mc_snapshot_array_is_not_a_logical_size_pair():
    """mc's snapshots array is indexed by block, not by a logical size —
    the §5.2 analysis correctly refuses it (the benchmark's nulling is
    justified by the block-ordering argument, which the paper classes
    under array liveness more generally)."""
    table = table_of("mc")
    assert logical_size_pairs(table, "Simulation") == []


def test_euler_grid_rows_bounded_by_active_count():
    """euler: assigning null / package array — reads of grid[] are
    bounded by the activeRows computation; the analysis pair check
    needs the decrement idiom, which euler's functional style lacks, so
    the transform is licensed by the monotone retirement argument (the
    revised source encodes it manually, as the paper did)."""
    table = table_of("euler")
    info = table.get("Solver")
    assert "grid" in info.fields
    assert info.fields["grid"].mods.visibility == "package"


def test_analyzer_liveness_and_usage():
    """analyzer: assigning null / local variable + private static."""
    from repro.transform.assign_null import null_insertion_candidates

    program = compiled_of("analyzer")
    main = program.classes["Analyzer"].methods["main"]
    # 'ir' is read at the println; afterwards it is dead
    candidates = null_insertion_candidates(main, "ir")
    assert candidates
    # the side table is private static and only touched inside the
    # phase-1 method, so nulling it once parsing finishes is safe — the
    # §5.3 point that this needs more than method-local analysis
    usage = field_usage(program)
    assert usage.static_writes.get(("Parser", "sideTable"))
    readers = {m.qualified_name for m in usage.static_reads.get(("Parser", "sideTable"), [])}
    assert readers <= {"Parser.parse"}
