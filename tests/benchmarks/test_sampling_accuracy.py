"""The sampling-accuracy gate: byte-weighted sampling must reproduce
the full profiler's answers on every benchmark.

For each of the ten programs, a sampled profile (``--sample-bytes 500
--seed 0``) is compared against the full profile:

* top-10 per-site drag rankings overlap >= 0.8 — both drag-weighted
  over the full top 10 and as a strict set over the top 5.  The
  weighting matters: every benchmark's top-10 tail is a run of
  near-tied singleton library sites (``Locale.<clinit>:31x``, each a
  fraction of a percent of total drag and within 0.1% of its
  neighbours), where strict set membership is tie-breaking noise, not
  a property sampling could preserve.  Drag-weighting scores a miss by
  the drag it actually misplaces;
* estimated total drag (and bytes) within 10% of the true totals,
* streaming, batch, and K-way sharded serve aggregation agree — bit
  for bit — on the weighted rankings payload.

CI runs this module as the "sampling gate"; the pinned seed is what
makes the gate deterministic.
"""

import pytest

from repro.benchmarks.registry import all_benchmarks
from repro.benchmarks.runner import compile_benchmark
from repro.core.analyzer import DragAnalysis
from repro.core.profiler import profile_program
from repro.serve.merge import prove_merge_equals_batch, rankings_payload
from repro.stream.aggregate import StreamingDragAnalysis

SAMPLE_BYTES = 500  # rate 2e-3 per byte, above the gate's 1e-3 floor
SEED = 0

BENCHMARK_NAMES = sorted(all_benchmarks())


@pytest.fixture(scope="module", params=BENCHMARK_NAMES)
def profiles(request):
    """(name, full profile, sampled profile) for one benchmark."""
    name = request.param
    bench = all_benchmarks()[name]
    program = compile_benchmark(bench, revised=False)
    args = bench.args_for("primary")
    full = profile_program(program, args, interval_bytes=bench.interval_bytes)
    sampled = profile_program(
        program,
        args,
        interval_bytes=bench.interval_bytes,
        sample_bytes=SAMPLE_BYTES,
        seed=SEED,
    )
    return name, full, sampled


def top_sites(analysis, k=10):
    return [str(g.key) for g in analysis.sorted_sites(k)]


def test_sampling_reduces_the_log(profiles):
    name, full, sampled = profiles
    assert len(sampled.records) < len(full.records), name


def test_top10_overlap_drag_weighted(profiles):
    """>= 0.8 of the drag mass held by the full profile's top 10 sites
    must reappear in the sampled top 10 (in practice it is > 0.96 on
    every benchmark — the dominant sites are large allocations, which
    byte sampling keeps near-certainly)."""
    name, full, sampled = profiles
    full_analysis = DragAnalysis(full.records)
    full_drag = {str(g.key): g.total_drag for g in full_analysis.by_site.values()}
    full_top = top_sites(full_analysis)
    samp_top = set(top_sites(DragAnalysis(sampled.records)))
    mass = sum(full_drag[key] for key in full_top)
    hit = sum(full_drag[key] for key in full_top if key in samp_top)
    assert mass > 0, name
    overlap = hit / mass
    assert overlap >= 0.8, (name, overlap, full_top, sorted(samp_top))


def test_top5_overlap_strict(profiles):
    """The head of the ranking — where the drag actually lives — must
    also overlap >= 0.8 as a plain set."""
    name, full, sampled = profiles
    full_top = top_sites(DragAnalysis(full.records), k=5)
    samp_top = top_sites(DragAnalysis(sampled.records), k=5)
    k = min(len(full_top), 5)
    overlap = len(set(full_top[:k]) & set(samp_top[:k])) / k
    assert overlap >= 0.8, (name, overlap, full_top, samp_top)


def test_total_drag_relative_error(profiles):
    name, full, sampled = profiles
    truth = DragAnalysis(full.records).total_drag
    est = DragAnalysis(sampled.records).est_total_drag
    rel_err = abs(est - truth) / truth
    assert rel_err <= 0.10, (name, rel_err, truth, est)


def test_total_bytes_relative_error(profiles):
    name, full, sampled = profiles
    truth = DragAnalysis(full.records).total_bytes
    est = DragAnalysis(sampled.records).est_total_bytes
    rel_err = abs(est - truth) / truth
    assert rel_err <= 0.10, (name, rel_err, truth, est)


def test_streaming_equals_batch_on_sampled_records(profiles):
    name, _, sampled = profiles
    batch = DragAnalysis(sampled.records)
    streaming = StreamingDragAnalysis().consume(sampled.records)
    for table in ("site", "nested", "never_used"):
        assert rankings_payload(streaming, table=table) == rankings_payload(
            batch, table=table
        ), (name, table)


def test_sharded_merge_equals_batch_on_sampled_records(profiles):
    name, _, sampled = profiles
    proof = prove_merge_equals_batch(sampled.records, shard_counts=(1, 2, 4, 8))
    assert proof["splits_checked"] > 0, name
