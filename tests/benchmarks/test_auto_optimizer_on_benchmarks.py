"""The automatic optimizer versus the paper's manual rewrites, on the
actual benchmarks.

The paper's §5 claims most of its manual rewrites could be conducted by
an optimizing compiler. Here the §3.4 advisor runs on the *original*
benchmark sources and must autonomously recover a meaningful share of
the hand-written revision's savings.
"""

import pytest

from repro.core import profile_program
from repro.core.integrals import savings
from repro.benchmarks import get_benchmark
from repro.benchmarks.runner import compile_benchmark
from repro.mjava.compiler import compile_program
from repro.mjava.parser import parse_program
from repro.mjava.pretty import pretty_print
from repro.runtime.library import link
from repro.transform.advisor import optimize


def auto_optimize(name):
    bench = get_benchmark(name)
    program = link(bench.original)
    revised, report = optimize(
        program, bench.main_class, bench.primary_args,
        interval_bytes=bench.interval_bytes,
    )
    return bench, revised, report


def measure(bench, program_ast):
    profile = profile_program(
        compile_program(program_ast, main_class=bench.main_class),
        bench.primary_args,
        interval_bytes=bench.interval_bytes,
    )
    return profile


def test_advisor_lazy_allocates_jack_collections():
    """§3.4.3 automated: the advisor must find the three constructor
    collections and make them lazy, matching the manual rewrite."""
    bench, revised, report = auto_optimize("jack")
    lazy = [a for a in report.applied() if a.transformation == "lazy-allocation"]
    assert len(lazy) >= 3, report.summary()
    assert all("NfaBuilder" in a.detail for a in lazy)
    text = pretty_print(revised)
    assert "lazyInit_expansion" in text
    assert "lazyInit_firstSet" in text
    assert "lazyInit_followSet" in text

    original = measure(bench, link(bench.original))
    auto = measure(bench, revised)
    assert original.run_result.stdout == auto.run_result.stdout
    row = savings(original.records, auto.records)
    manual_row = savings(
        original.records,
        measure(bench, link(bench.revised)).records,
    )
    # the automatic rewrite recovers most of the manual space saving
    assert row.space_saving_pct > 0.6 * manual_row.space_saving_pct, (
        row.space_saving_pct,
        manual_row.space_saving_pct,
    )


def test_advisor_nulls_juru_buffer():
    """§3.4.1 automated: assign-null on the indexing buffer."""
    bench, revised, report = auto_optimize("juru")
    nulls = [a for a in report.applied() if a.transformation == "assign-null"]
    assert nulls, report.summary()
    assert any("buffer" in a.detail for a in nulls)
    text = pretty_print(revised)
    assert "buffer = null;" in text

    original = measure(bench, link(bench.original))
    auto = measure(bench, revised)
    assert original.run_result.stdout == auto.run_result.stdout
    row = savings(original.records, auto.records)
    assert row.drag_saving_pct > 15.0


def test_advisor_removes_raytrace_details():
    """§3.4.2 automated: dead-code removal of the 17 never-used sites.

    The Detail objects are only used inside their own constructors, the
    details array is never read (getDetail is call-graph-unreachable),
    and the constructors are pure — the §5 analyses license removal."""
    bench, revised, report = auto_optimize("raytrace")
    removed = [a for a in report.applied() if a.transformation == "dead-code-removal"]
    assert removed, report.summary()

    original = measure(bench, link(bench.original))
    auto = measure(bench, revised)
    assert original.run_result.stdout == auto.run_result.stdout
    auto_details = [r for r in auto.records if r.type_name == "Detail"]
    assert auto_details == []


def test_advisor_leaves_db_unchanged_in_behaviour():
    bench, revised, report = auto_optimize("db")
    original = measure(bench, link(bench.original))
    auto = measure(bench, revised)
    assert original.run_result.stdout == auto.run_result.stdout
    # repository untouched: every record still allocated and retained
    count = lambda p: sum(1 for r in p.records if r.type_name == "DbRecord")
    assert count(auto) == count(original)
