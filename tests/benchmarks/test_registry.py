"""Registry integrity: all nine benchmarks compile, run, and agree
between original and revised versions on both inputs."""

import pytest

from repro.benchmarks import all_benchmarks, get_benchmark
from repro.benchmarks.paper import TABLE1, TABLE2, TABLE3, TABLE4, TABLE5
from repro.benchmarks.runner import benchmark_metrics, compile_benchmark
from repro.runtime.interpreter import Interpreter

NAMES = ["javac", "db", "jack", "raytrace", "jess", "mc", "euler", "juru", "analyzer", "cache", "strings"]


def test_all_nine_benchmarks_registered():
    assert sorted(all_benchmarks()) == sorted(NAMES)


def test_paper_tables_cover_all_benchmarks():
    for table in (TABLE1, TABLE2, TABLE3, TABLE4, TABLE5):
        for name in NAMES:
            assert name in table, name


def test_get_benchmark_unknown_name():
    with pytest.raises(KeyError):
        get_benchmark("nosuch")


@pytest.mark.parametrize("name", NAMES)
def test_benchmark_compiles_both_versions(name):
    bench = get_benchmark(name)
    for revised in (False, True):
        program = compile_benchmark(bench, revised=revised)
        assert program.main_class == bench.main_class


@pytest.mark.parametrize("name", NAMES)
def test_outputs_identical_on_both_inputs(name):
    """§3.2: 'we also checked that the original and revised benchmarks
    produce identical results on several inputs'."""
    bench = get_benchmark(name)
    for which in ("primary", "alternate"):
        args = bench.args_for(which)
        orig = Interpreter(compile_benchmark(bench, False)).run(args)
        revd = Interpreter(compile_benchmark(bench, True)).run(args)
        assert orig.stdout == revd.stdout, f"{name}/{which}"
        assert orig.stdout, f"{name}/{which} produced no output"


@pytest.mark.parametrize("name", NAMES)
def test_metrics_are_sane(name):
    metrics = benchmark_metrics(get_benchmark(name))
    assert metrics["classes"] >= 1
    assert metrics["stmts"] > 20


def test_db_revised_is_original():
    bench = get_benchmark("db")
    assert bench.revised == bench.original
    assert bench.rewritings == []


def test_rewritings_match_table5_strategies():
    for name in NAMES:
        bench = get_benchmark(name)
        ours = {(r.strategy, r.reference_kind) for r in bench.rewritings}
        paper = {(s, k) for (s, k, _, _) in TABLE5[name]}
        assert ours == paper, name
