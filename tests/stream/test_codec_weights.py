"""The v2 codec's weight field: round-trips, backward compatibility,
and the full-rate byte-identity guarantee.

The contract under test: weight is encoded only when it differs from
1.0, so a full-rate stream is byte-for-byte the pre-weight v2 format —
old readers parse new full-rate files, and the new reader parses old
files with every weight defaulting to 1.0.
"""

import io
import struct

import pytest

from repro.core.trailer import ObjectRecord
from repro.stream.codec import (
    V2FrameEncoder,
    V2LogWriter,
    decode_end_totals,
    peek_record_size,
    read_v2_log,
    record_weight,
    reweight_record,
)
from tests.core.test_analyzer import make_record

_F_HAS_WEIGHT = 0x40


def encode_stream(records, end_time=5000, metadata=None):
    buf = io.BytesIO()
    enc = V2FrameEncoder(buf, metadata=metadata)
    for record in records:
        enc.write_record(record)
    enc.write_end(end_time=end_time)
    return buf.getvalue(), enc


def record_payloads(data):
    """Split a v2 byte stream into (frame_type, payload) pairs."""
    from repro.stream.codec import MAGIC, _read_uvarint

    assert data[: len(MAGIC)] == MAGIC
    pos = len(MAGIC) + 1  # magic + version byte
    header_len, pos = _read_uvarint(data, pos)
    pos += header_len  # skip the JSON header
    frames = []
    while pos < len(data):
        frame_type = data[pos]
        length, pos = _read_uvarint(data, pos + 1)
        frames.append((frame_type, data[pos : pos + length]))
        pos += length
    return frames


FRAME_RECORD = None  # resolved lazily from the codec's constants


def _record_frames(data):
    from repro.stream import codec

    return [
        payload
        for ftype, payload in record_payloads(data)
        if ftype == codec.FRAME_RECORD
    ]


def _end_payload(data):
    from repro.stream import codec

    ends = [p for t, p in record_payloads(data) if t == codec.FRAME_END]
    assert len(ends) == 1
    return ends[0]


def test_weighted_record_round_trip(tmp_path):
    records = [
        make_record(handle=1, size=64, site_label="A.m:1").with_weight(12.5),
        make_record(handle=2, size=640, site_label="B.m:2"),  # weight 1.0
        make_record(handle=3, size=8, site_label="C.m:3").with_weight(101.25),
    ]
    path = tmp_path / "w.dlog2"
    with V2LogWriter(path) as writer:
        for record in records:
            writer.write_record(record)
        writer.close(end_time=900)
    loaded = read_v2_log(path)
    assert [r.weight for r in loaded.records] == [12.5, 1.0, 101.25]
    assert [r.to_dict() for r in loaded.records] == [r.to_dict() for r in records]


def test_full_rate_stream_has_no_weight_flag_and_no_end_totals():
    """A stream of weight-1.0 records is the pre-weight wire format:
    no record carries the weight flag, and END has no trailing totals —
    exactly what an old reader expects."""
    records = [make_record(handle=h, size=32 * h) for h in range(1, 20)]
    data, enc = encode_stream(records)
    for payload in _record_frames(data):
        assert not payload[0] & _F_HAS_WEIGHT
        assert record_weight(payload) == 1.0
    assert decode_end_totals(_end_payload(data)) == (None, None)
    # and the encoder's running totals stay exact ints
    assert enc.weighted_count == len(records)
    assert enc.weighted_bytes == sum(r.size for r in records)


def test_weighted_stream_end_totals_round_trip():
    records = [
        make_record(handle=1, size=100).with_weight(3.0),
        make_record(handle=2, size=50),
        make_record(handle=3, size=10).with_weight(20.0),
    ]
    data, enc = encode_stream(records)
    est_objects, est_bytes = decode_end_totals(_end_payload(data))
    assert est_objects == pytest.approx(3.0 + 1 + 20.0)
    assert est_bytes == pytest.approx(3.0 * 100 + 50 + 20.0 * 10)
    assert enc.weighted_count == pytest.approx(est_objects)
    assert enc.weighted_bytes == pytest.approx(est_bytes)


def test_end_totals_surface_on_loaded_log(tmp_path):
    path = tmp_path / "w.dlog2"
    with V2LogWriter(path) as writer:
        writer.write_record(make_record(handle=1, size=100).with_weight(4.0))
        writer.close(end_time=10)
    loaded = read_v2_log(path)
    assert loaded.est_objects == pytest.approx(4.0)
    assert loaded.est_bytes == pytest.approx(400.0)

    full = tmp_path / "f.dlog2"
    with V2LogWriter(full) as writer:
        writer.write_record(make_record(handle=1, size=100))
        writer.close(end_time=10)
    loaded = read_v2_log(full)
    assert loaded.est_objects is None  # old-format END: no totals
    assert loaded.est_bytes is None


def test_record_weight_and_peek_size_helpers():
    record = make_record(handle=9, size=777).with_weight(2.5)
    data, _ = encode_stream([record])
    (payload,) = _record_frames(data)
    assert record_weight(payload) == 2.5
    assert peek_record_size(payload) == 777

    plain = make_record(handle=9, size=777)
    data, _ = encode_stream([plain])
    (payload,) = _record_frames(data)
    assert record_weight(payload) == 1.0
    assert peek_record_size(payload) == 777


def test_reweight_record_splices_without_decode():
    """reweight_record edits the payload in place (no string table
    needed) and composes with the original encoding."""
    record = make_record(handle=4, size=256, site_label="X.y:9")
    data, _ = encode_stream([record])
    (payload,) = _record_frames(data)

    up = reweight_record(payload, 8.0)
    assert record_weight(up) == 8.0
    assert peek_record_size(up) == 256
    assert len(up) == len(payload) + 8  # flag already fit in the byte

    # re-weighting an already-weighted payload replaces, not appends
    up2 = reweight_record(up, 3.5)
    assert record_weight(up2) == 3.5
    assert len(up2) == len(up)

    # weight 1.0 strips the field entirely: back to the original bytes
    down = reweight_record(up, 1.0)
    assert down == payload


def test_weight_field_is_trailing_eight_bytes():
    """The weight rides at the payload tail as a little-endian double —
    the layout reweight_record and record_weight rely on."""
    record = make_record(handle=2, size=40).with_weight(6.25)
    data, _ = encode_stream([record])
    (payload,) = _record_frames(data)
    assert payload[0] & _F_HAS_WEIGHT
    assert struct.unpack("<d", payload[-8:])[0] == 6.25


def test_weighted_properties_exact_ints_at_full_rate():
    record = make_record(size=128, created=0, last_use=10, collected=100)
    assert record.weighted_count == 1
    assert isinstance(record.weighted_count, int)
    assert record.weighted_size == 128
    assert isinstance(record.weighted_size, int)
    assert record.weighted_drag == record.drag
    assert isinstance(record.weighted_drag, int)

    heavy = record.with_weight(2.0)
    assert heavy.weighted_count == 2.0
    assert heavy.weighted_size == 256.0
    assert heavy.weighted_drag == pytest.approx(2.0 * record.drag)


def test_weight_survives_json_round_trip():
    record = make_record(size=64).with_weight(7.5)
    data = record.to_dict()
    assert data["weight"] == 7.5
    assert ObjectRecord.from_dict(data).weight == 7.5
    plain = make_record(size=64)
    assert "weight" not in plain.to_dict()  # v1 logs stay weightless
    assert ObjectRecord.from_dict(plain.to_dict()).weight == 1.0
