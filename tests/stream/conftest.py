"""Shared profiles for the streaming-pipeline tests.

The db and euler benchmark profiles are the reference streams for the
batch/streaming equivalence suite; computing them once per session
keeps the suite fast.
"""

import pytest

from repro.benchmarks.registry import get_benchmark
from repro.benchmarks.runner import compile_benchmark
from repro.core.profiler import profile_program


@pytest.fixture(scope="session")
def bench_profiles():
    out = {}
    for name in ("db", "euler"):
        bench = get_benchmark(name)
        program = compile_benchmark(bench, revised=False)
        out[name] = profile_program(
            program, bench.args_for("primary"), interval_bytes=bench.interval_bytes
        )
    return out
