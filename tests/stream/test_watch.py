"""Live metrics and the watch loop (tailing v1 and v2 logs)."""

import io
import json

import pytest

from repro.errors import ProfileError
from repro.core import profile_source
from repro.core.logfile import write_log
from repro.stream import LogWriterSink, MetricsSink, open_log_writer, watch_log
from repro.stream.codec import V2LogWriter
from repro.core.profiler import HeapSample
from tests.core.test_analyzer import make_record

SOURCE = """
class Main {
    public static void main(String[] args) {
        char[] kept = new char[3000];
        kept[0] = 'x';
        for (int i = 0; i < 40; i = i + 1) { char[] junk = new char[500]; }
    }
}
"""


def make_v2_log(path, n=12, end_time=5000, samples=True):
    writer = V2LogWriter(path, metadata={"main": "Main"})
    for i in range(n):
        writer.write_record(
            make_record(handle=i, site_label=f"S.m:{i % 3}", collected=1000 + i)
        )
    if samples:
        writer.write_sample(HeapSample(2500, 4096, 3))
    writer.close(end_time=end_time)


def test_metrics_sink_snapshots_every_sample(tmp_path):
    json_path = str(tmp_path / "metrics.json")
    sink = MetricsSink(top_k=3, json_path=json_path, keep_history=True)
    result = profile_source(
        SOURCE, "Main", interval_bytes=4096, sink=sink, buffered=True
    )
    assert sink.latest is not None and sink.latest.finished
    assert sink.latest.records_seen == len(
        [r for r in result.records if not r.excluded]
    )
    assert sink.latest.time == result.end_time
    # one snapshot per deep-GC sample plus the final one
    assert len(sink.history) == len(result.samples) + 1
    assert len(sink.latest.top_sites) <= 3
    with open(json_path) as f:
        flushed = json.load(f)
    assert flushed["finished"] is True
    assert flushed["records_seen"] == sink.latest.records_seen
    assert flushed["top_sites"] == sink.latest.top_sites


def test_metrics_snapshots_are_monotone(tmp_path):
    sink = MetricsSink(keep_history=True)
    profile_source(SOURCE, "Main", interval_bytes=4096, sink=sink)
    drags = [m.total_drag for m in sink.history]
    assert drags == sorted(drags)
    records = [m.records_seen for m in sink.history]
    assert records == sorted(records)


def test_watch_once_on_v2_log(tmp_path):
    path = tmp_path / "run.dlog2"
    make_v2_log(path)
    out = io.StringIO()
    analysis = watch_log(path, once=True, top=2, out=out)
    text = out.getvalue()
    assert "repro watch" in text and "(finished)" in text
    assert "records 12" in text
    assert "top 2 sites by drag" in text
    assert analysis.object_count == 12
    assert analysis.end_time == 5000


def test_watch_once_on_v1_log(tmp_path):
    path = tmp_path / "run.draglog"
    write_log(path, [make_record(handle=i) for i in range(4)], end_time=900)
    out = io.StringIO()
    analysis = watch_log(path, once=True, out=out)
    assert analysis.object_count == 4
    assert "(finished)" in out.getvalue()


def test_watch_metrics_json_flush(tmp_path):
    path = tmp_path / "run.dlog2"
    make_v2_log(path, end_time=5000)
    json_path = str(tmp_path / "m.json")
    out = io.StringIO()
    watch_log(path, once=True, metrics_json=json_path, out=out)
    with open(json_path) as f:
        metrics = json.load(f)
    assert metrics["records_seen"] == 12
    assert metrics["finished"] is True
    assert metrics["time"] == 5000
    assert metrics["reachable_bytes"] == 4096


def test_watch_missing_file_once_raises(tmp_path):
    with pytest.raises(ProfileError):
        watch_log(tmp_path / "ghost.dlog2", once=True)


def test_watch_follows_a_growing_log(tmp_path, monkeypatch):
    """Simulate tail-while-writing: watch sees records appended between
    polls and stops at the END frame."""
    full = tmp_path / "full.dlog2"
    make_v2_log(full, n=8, end_time=4000)
    data = full.read_bytes()
    growing = tmp_path / "growing.dlog2"
    growing.write_bytes(data[: len(data) // 3])

    # the inter-poll sleep doubles as the "writer": it appends the rest
    def fake_sleep(_):
        growing.write_bytes(data)

    import repro.stream.watch as watch_mod

    monkeypatch.setattr(watch_mod._time, "sleep", fake_sleep)
    out = io.StringIO()
    analysis = watch_log(growing, poll_interval=0.01, out=out, max_polls=10)
    assert analysis.object_count == 8
    assert analysis.end_time == 4000
    assert "(finished)" in out.getvalue()


def test_watch_end_to_end_with_streamed_profile(tmp_path):
    """profile --sink stream then watch: the full pipeline."""
    path = tmp_path / "run.dlog2"
    sink = LogWriterSink(open_log_writer(path, metadata={"main": "Main"}))
    result = profile_source(SOURCE, "Main", interval_bytes=4096, sink=sink)
    out = io.StringIO()
    analysis = watch_log(path, once=True, out=out)
    assert analysis.end_time == result.end_time
    assert analysis.object_count == result.profiler.record_count
    assert "deep-GC samples" in out.getvalue()
