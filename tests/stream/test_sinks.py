"""Event sinks and the profiler's streaming emission path."""

from repro.core import profile_source
from repro.core.logfile import read_log
from repro.stream import (
    AggregatorSink,
    BufferSink,
    LogWriterSink,
    TeeSink,
    open_log_writer,
)

SOURCE = """
class Main {
    public static void main(String[] args) {
        char[] kept = new char[2000];
        kept[0] = 'x';
        for (int i = 0; i < 30; i = i + 1) { char[] junk = new char[400]; }
    }
}
"""


def profile_with(sink=None, buffered=None):
    return profile_source(
        SOURCE, "Main", interval_bytes=4096, sink=sink, buffered=buffered
    )


def test_buffer_sink_matches_legacy_buffering():
    sink = BufferSink()
    streamed = profile_with(sink=sink)
    buffered = profile_with()
    assert sink.end_time == buffered.end_time
    assert len(sink.records) == len(buffered.records)
    assert len(sink.samples) == len(buffered.samples)
    assert [r.to_dict() for r in sink.records] == [
        r.to_dict() for r in buffered.records
    ]
    # the profiler itself buffered nothing: O(live), not O(allocated)
    assert streamed.records == []
    assert streamed.samples == []
    assert streamed.profiler.record_count == len(sink.records)


def test_buffered_true_keeps_both_paths():
    sink = BufferSink()
    result = profile_with(sink=sink, buffered=True)
    assert len(result.records) == len(sink.records) > 0


def test_log_writer_sink_streams_identical_log(tmp_path):
    """A streamed v2 log holds exactly the records a buffered run logs."""
    path = tmp_path / "run.dlog2"
    sink = LogWriterSink(open_log_writer(path, metadata={"main": "Main"}))
    streamed = profile_with(sink=sink)
    buffered = profile_with()
    loaded = read_log(path)
    assert loaded.end_time == buffered.end_time == streamed.end_time
    assert loaded.metadata == {"main": "Main"}
    assert [r.to_dict() for r in loaded.records] == [
        r.to_dict() for r in buffered.records
    ]
    assert len(loaded.samples) == len(buffered.samples)


def test_log_writer_sink_v1(tmp_path):
    path = tmp_path / "run.draglog"
    sink = LogWriterSink(open_log_writer(path))  # auto -> v1 for .draglog
    profile_with(sink=sink)
    buffered = profile_with()
    loaded = read_log(path)
    assert loaded.end_time == buffered.end_time
    assert len(loaded.records) == len(buffered.records)


def test_aggregator_sink_builds_analysis_online():
    sink = AggregatorSink()
    profile_with(sink=sink)
    buffered = profile_with()
    from repro.core.analyzer import DragAnalysis

    batch = DragAnalysis(buffered.records)
    assert sink.analysis.total_drag == batch.total_drag
    assert sink.analysis.object_count == batch.object_count
    assert sink.analysis.end_time == buffered.end_time


def test_tee_sink_fans_out(tmp_path):
    buffer = BufferSink()
    agg = AggregatorSink()
    writer = LogWriterSink(open_log_writer(tmp_path / "tee.dlog2"))
    profile_with(sink=TeeSink(buffer, agg, writer))
    assert len(buffer.records) > 0
    assert agg.analysis.object_count == len(
        [r for r in buffer.records if not r.excluded]
    )
    assert len(read_log(tmp_path / "tee.dlog2").records) == len(buffer.records)


def test_open_log_writer_explicit_formats(tmp_path):
    from repro.core.logfile import LogWriter
    from repro.stream.codec import V2LogWriter

    assert isinstance(open_log_writer(tmp_path / "a.log", fmt="v1"), LogWriter)
    assert isinstance(open_log_writer(tmp_path / "b.log", fmt="v2"), V2LogWriter)
    assert isinstance(open_log_writer(tmp_path / "c.dlog2"), V2LogWriter)
