"""The compact v2 log codec: round trips, string table, truncation."""

import os

import pytest

from repro.errors import ProfileError
from repro.core.logfile import iter_log, read_log, write_log
from repro.core.profiler import HeapSample
from repro.stream.codec import (
    MAGIC,
    V2LogWriter,
    V2TailReader,
    iter_v2_log,
    read_v2_log,
)
from tests.core.test_analyzer import make_record


def write_v2(path, records, samples=(), end_time=None, metadata=None):
    writer = V2LogWriter(path, metadata=metadata)
    for record in records:
        writer.write_record(record)
    for sample in samples:
        writer.write_sample(sample)
    writer.close(end_time=end_time)
    return writer


def test_roundtrip_preserves_records(tmp_path):
    records = [
        make_record(handle=1, last_use=0),
        make_record(
            handle=2, last_use=555, use_frame="A.b:3", nested=("A.b:3", "A.a:1")
        ),
    ]
    path = tmp_path / "run.dlog2"
    write_v2(path, records, end_time=12345, metadata={"bench": "test"})
    loaded = read_v2_log(path)
    assert loaded.end_time == 12345
    assert loaded.metadata == {"bench": "test"}
    for original, parsed in zip(records, loaded.records):
        assert parsed.to_dict() == original.to_dict()


def test_roundtrip_preserves_use_chain_and_samples(tmp_path):
    record = make_record(handle=7, last_use=200, use_frame="A.b:3")
    record.last_use_chain = ("A.b:3", "A.a:1")
    path = tmp_path / "chain.dlog2"
    write_v2(path, [record], samples=[HeapSample(100, 4096, 7)], end_time=999)
    loaded = read_v2_log(path)
    assert loaded.records[0].last_use_chain == ("A.b:3", "A.a:1")
    assert len(loaded.samples) == 1
    assert loaded.samples[0].reachable_bytes == 4096
    assert loaded.samples[0].object_count == 7


def test_iter_v2_log_is_a_generator(tmp_path):
    records = [make_record(handle=i) for i in range(5)]
    path = tmp_path / "gen.dlog2"
    write_v2(path, records, end_time=1)
    it = iter_v2_log(path)
    first = next(it)
    assert first.handle == 0
    assert [r.handle for r in it] == [1, 2, 3, 4]


def test_string_table_interns_repeated_labels(tmp_path):
    """1000 records sharing one site must not store the label 1000 times."""
    records = [
        make_record(handle=i, site_label="Hot.site:1", nested=("Hot.site:1",))
        for i in range(1000)
    ]
    path = tmp_path / "interned.dlog2"
    writer = write_v2(path, records, end_time=1)
    assert len(writer._strings) == 3  # "Object", "Hot.site:1", "new"
    v1_path = tmp_path / "same.draglog"
    write_log(v1_path, records, end_time=1)
    assert os.path.getsize(path) < os.path.getsize(v1_path) / 4


def test_v1_v2_roundtrip_identical(tmp_path):
    """A log converted v1 -> v2 -> records matches the v1 records."""
    records = [
        make_record(handle=1, last_use=0),
        make_record(handle=2, last_use=50, use_frame="B.use:9"),
        make_record(handle=3, site_label="C.m:2", site_lib=True),
    ]
    v1 = tmp_path / "run.draglog"
    write_log(v1, records, end_time=777, metadata={"main": "Main"})
    v1_loaded = read_log(v1)
    v2 = tmp_path / "run.dlog2"
    write_v2(v2, v1_loaded.records, end_time=v1_loaded.end_time,
             metadata=v1_loaded.metadata)
    v2_loaded = read_log(v2)  # via the auto-detecting reader
    assert v2_loaded.end_time == 777
    assert v2_loaded.metadata == {"main": "Main"}
    assert [r.to_dict() for r in v2_loaded.records] == [
        r.to_dict() for r in v1_loaded.records
    ]


def test_read_log_autodetects_v2(tmp_path):
    path = tmp_path / "auto.bin"  # extension irrelevant: magic decides
    write_v2(path, [make_record(handle=4)], end_time=5)
    with open(path, "rb") as f:
        assert f.read(4) == MAGIC
    loaded = read_log(path)
    assert len(loaded.records) == 1
    assert [r.handle for r in iter_log(path)] == [4]


def test_truncated_v2_strict_raises_lenient_stops(tmp_path):
    records = [make_record(handle=i) for i in range(20)]
    path = tmp_path / "trunc.dlog2"
    write_v2(path, records, end_time=9)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 7])  # chop mid-frame
    with pytest.raises(ProfileError):
        read_v2_log(path)
    loaded = read_v2_log(path, strict=False)
    assert 0 < len(loaded.records) <= 20
    assert loaded.end_time is None  # END frame was destroyed


def test_missing_end_frame_is_truncation(tmp_path):
    path = tmp_path / "noend.dlog2"
    writer = V2LogWriter(path)
    writer.write_record(make_record(handle=1))
    writer._file.flush()
    os_level_copy = path.read_bytes()
    writer.close()
    path.write_bytes(os_level_copy)  # as if the run crashed before close
    with pytest.raises(ProfileError):
        read_v2_log(path)
    loaded = read_v2_log(path, strict=False)
    assert len(loaded.records) == 1


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "bad.dlog2"
    path.write_bytes(b"NOPE" + b"\x00" * 32)
    with pytest.raises(ProfileError):
        read_v2_log(path)


def test_tail_reader_handles_partial_frames(tmp_path):
    """Feeding a growing file byte-group by byte-group yields every
    record exactly once, regardless of where the chunk boundaries cut."""
    records = [make_record(handle=i, site_label=f"S.m:{i % 3}") for i in range(10)]
    full = tmp_path / "full.dlog2"
    write_v2(full, records, samples=[HeapSample(50, 128, 2)], end_time=42)
    data = full.read_bytes()

    growing = tmp_path / "growing.dlog2"
    growing.write_bytes(b"")
    tail = V2TailReader(growing)
    seen = []
    step = 13  # deliberately misaligned with frame boundaries
    for start in range(0, len(data), step):
        with open(growing, "ab") as f:
            f.write(data[start : start + step])
        seen.extend(tail.poll())
    kinds = [k for k, _ in seen]
    assert kinds.count("record") == 10
    assert kinds.count("sample") == 1
    assert kinds[-1] == "end"
    assert tail.ended and tail.end_time == 42
    handles = [r.handle for k, r in seen if k == "record"]
    assert handles == list(range(10))


def test_end_frame_carries_finalizer_errors(tmp_path):
    path = tmp_path / "fe.dlog2"
    writer = V2LogWriter(path)
    writer.write_record(make_record(handle=1))
    writer.close(end_time=500, finalizer_errors=7)
    loaded = read_v2_log(path)
    assert loaded.end_time == 500
    assert loaded.finalizer_errors == 7


def test_end_frame_without_finalizer_errors_reads_none(tmp_path):
    path = tmp_path / "nofe.dlog2"
    write_v2(path, [make_record(handle=1)], end_time=500)
    assert read_v2_log(path).finalizer_errors is None


def test_frame_parser_feed_frames_raw_layer(tmp_path):
    """The serve daemon's ingest layer: raw frames out, strings and END
    state tracked, records left undecoded for the shard that owns them."""
    from repro.stream.codec import (
        FRAME_END,
        FRAME_RECORD,
        FRAME_SAMPLE,
        FRAME_STRING,
        FrameParser,
        _decode_record,
        peek_site_label,
    )

    records = [
        make_record(handle=i, site_label=f"S.m:{i % 3}", use_frame="U.f:1")
        for i in range(10)
    ]
    path = tmp_path / "raw.dlog2"
    write_v2(path, records, samples=[HeapSample(50, 128, 2)], end_time=42)
    parser = FrameParser()
    frames = []
    data = path.read_bytes()
    for start in range(0, len(data), 11):  # misaligned chunks
        frames.extend(parser.feed_frames(data[start : start + 11]))
    assert parser.ended and parser.end_time == 42
    assert not parser.truncated
    kinds = [t for t, _ in frames]
    assert kinds.count(FRAME_RECORD) == 10
    assert kinds.count(FRAME_SAMPLE) == 1
    assert kinds.count(FRAME_END) == 1
    assert kinds.count(FRAME_STRING) == len(parser.strings) > 0
    # raw payloads decode to the originals, and the cheap site peek
    # agrees with the full decode
    decoded = [
        _decode_record(p, parser.strings) for t, p in frames if t == FRAME_RECORD
    ]
    for original, parsed, payload in zip(
        records, decoded, (p for t, p in frames if t == FRAME_RECORD)
    ):
        assert parsed.to_dict() == original.to_dict()
        assert peek_site_label(payload, parser.strings) == original.site_label


def test_frame_parser_truncated_and_reset(tmp_path):
    from repro.stream.codec import FrameParser

    records = [make_record(handle=i) for i in range(5)]
    path = tmp_path / "t.dlog2"
    write_v2(path, records, end_time=7)
    data = path.read_bytes()

    parser = FrameParser()
    parser.feed_frames(data[: len(data) - 6])  # stop mid-frame
    assert parser.truncated  # pending bytes and no END seen
    assert parser.strings  # partial state is really there...
    parser.reset()
    assert not parser.strings and parser.pending_bytes == 0
    assert parser.metadata == {} and not parser.ended
    # ...and a reset parser consumes a fresh stream from scratch
    events = parser.feed(data)
    assert [k for k, _ in events].count("record") == 5
    assert parser.ended and not parser.truncated


def test_frame_parser_unknown_frame_type_raises(tmp_path):
    from repro.stream.codec import FrameParser, _write_uvarint

    path = tmp_path / "u.dlog2"
    write_v2(path, [make_record(handle=1)], end_time=3)
    bogus = bytearray([0x7F])
    _write_uvarint(bogus, 2)
    bogus += b"xx"
    parser = FrameParser()
    with pytest.raises(ProfileError):
        parser.feed_frames(path.read_bytes() + bytes(bogus))


def test_old_end_frame_layout_still_parses(tmp_path):
    """A pre-field END frame (end_time + count only) must still load."""
    from repro.stream.codec import FRAME_END, _write_uvarint

    path = tmp_path / "old.dlog2"
    writer = V2LogWriter(path)
    writer.write_record(make_record(handle=1))
    # Emit the legacy two-field END frame by hand, then close the file
    # without letting close() write its own.
    buf = bytearray()
    _write_uvarint(buf, 500 + 1)
    _write_uvarint(buf, writer.count)
    writer._frame(FRAME_END, bytes(buf))
    writer._file.close()
    writer._file = None
    loaded = read_v2_log(path)
    assert loaded.end_time == 500
    assert loaded.finalizer_errors is None
