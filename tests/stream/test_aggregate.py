"""Streaming/batch equivalence: StreamingDragAnalysis must reproduce
DragAnalysis exactly — the property the whole pipeline rests on."""

import pytest

from repro.core.analyzer import DragAnalysis
from repro.stream.aggregate import StreamingDragAnalysis
from tests.core.test_analyzer import make_record


def assert_equivalent(batch: DragAnalysis, stream: StreamingDragAnalysis):
    """Bit-for-bit agreement on every aggregate both sides expose."""
    assert stream.object_count == batch.object_count
    assert stream.total_bytes == batch.total_bytes
    assert stream.total_drag == batch.total_drag
    for table in ("by_site", "by_nested", "by_site_and_use"):
        batch_table = getattr(batch, table)
        stream_table = getattr(stream, table)
        assert set(stream_table) == set(batch_table), table
        for key, group in batch_table.items():
            stats = stream_table[key]
            assert stats.count == group.count, (table, key)
            assert stats.total_bytes == group.total_bytes, (table, key)
            assert stats.total_drag == group.total_drag, (table, key)
            assert stats.total_in_use == group.total_in_use, (table, key)
            assert stats.never_used_count == group.never_used_count, (table, key)
            assert stats.never_used_drag == group.never_used_drag, (table, key)
            assert stats.type_names == group.type_names, (table, key)
    # sorted views use identical comparators, so identical order
    assert [g.key for g in stream.sorted_sites()] == [
        g.key for g in batch.sorted_sites()
    ]
    assert [g.key for g in stream.sorted_nested()] == [
        g.key for g in batch.sorted_nested()
    ]
    assert [g.key for g in stream.never_used_sites()] == [
        g.key for g in batch.never_used_sites()
    ]


@pytest.mark.parametrize("name", ["db", "euler"])
def test_equivalence_on_benchmark_profiles(bench_profiles, name):
    records = bench_profiles[name].records
    assert len(records) > 100  # a real stream, not a toy
    batch = DragAnalysis(records)
    stream = StreamingDragAnalysis().consume(records)
    assert_equivalent(batch, stream)


@pytest.mark.parametrize("name", ["db", "euler"])
def test_equivalence_excluding_library_sites(bench_profiles, name):
    records = bench_profiles[name].records
    batch = DragAnalysis(records, include_library_sites=False)
    stream = StreamingDragAnalysis(include_library_sites=False).consume(records)
    assert_equivalent(batch, stream)


def test_excluded_records_filtered_like_batch():
    records = [
        make_record(handle=1, excluded=True),
        make_record(handle=2),
    ]
    batch = DragAnalysis(records)
    stream = StreamingDragAnalysis().consume(records)
    assert_equivalent(batch, stream)
    assert stream.object_count == 1


def test_nested_fallback_key_matches_batch():
    record = make_record(handle=1)
    record.nested_alloc = ()  # empty chain falls back to (site_label,)
    batch = DragAnalysis([record])
    stream = StreamingDragAnalysis().consume([record])
    assert_equivalent(batch, stream)
    assert (record.site_label,) in stream.by_nested


def test_drag_share_and_site_lookup():
    records = [
        make_record(handle=1, site_label="A.m:1", size=10, collected=1000),
        make_record(handle=2, site_label="B.n:2", size=10, collected=2000),
    ]
    stream = StreamingDragAnalysis().consume(records)
    site = stream.site("A.m:1")
    assert site is not None and site.count == 1
    assert stream.site("missing") is None
    assert abs(sum(stream.drag_share(s) for s in stream.by_site.values()) - 1.0) < 1e-9


def test_merge_equals_single_stream(bench_profiles):
    """Sharded aggregation: merging per-shard analyses equals analyzing
    the concatenated stream — the multi-process merge invariant."""
    records = bench_profiles["db"].records
    mid = len(records) // 2
    left = StreamingDragAnalysis().consume(records[:mid])
    right = StreamingDragAnalysis().consume(records[mid:])
    merged = left.merge(right)
    whole = StreamingDragAnalysis().consume(records)
    assert merged.total_drag == whole.total_drag
    assert merged.object_count == whole.object_count
    assert set(merged.by_site) == set(whole.by_site)
    for key, stats in whole.by_site.items():
        other = merged.by_site[key]
        assert (other.count, other.total_drag, other.never_used_count) == (
            stats.count,
            stats.total_drag,
            stats.never_used_count,
        )
    assert [g.key for g in merged.sorted_sites()] == [
        g.key for g in whole.sorted_sites()
    ]


def test_merge_rejects_mismatched_keys():
    from repro.stream.aggregate import SiteStats

    a, b = SiteStats("x"), SiteStats("y")
    with pytest.raises(ValueError):
        a.merge(b)
