"""End-to-end daemon tests: real sockets, real shard processes.

The headline test boots a live daemon and fires eight concurrent
replay clients at it (the issue's acceptance bar), then requires the
served rankings to be bit-identical — payload ``==`` — to a batch
:class:`DragAnalysis` of the same records. The truncation test proves
the robustness satellite: a client dying mid-frame increments
``repro_serve_truncated_streams_total`` and leaves every complete
frame aggregated, poisoning nothing.
"""

import io
import socket
import threading

import pytest

from repro.core.analyzer import DragAnalysis
from repro.obs.metrics import MetricsRegistry
from repro.serve.client import (
    ServeSink,
    fetch_json,
    fetch_metrics_text,
    fetch_rankings,
    replay_log,
)
from repro.serve.merge import rankings_payload
from repro.serve.protocol import encode_hello, read_json_frame_sync
from repro.serve.server import ServeConfig, start_server_thread
from repro.stream.codec import V2LogWriter, read_v2_log
from repro.core.profiler import HeapSample
from tests.core.test_analyzer import make_record


def write_v2_log(path, records, samples=(), end_time=1000):
    writer = V2LogWriter(path)
    for record in records:
        writer.write_record(record)
    for sample in samples:
        writer.write_sample(sample)
    writer.close(end_time=end_time)
    return path


def metric_value(text: str, name: str) -> float:
    for line in text.splitlines():
        if line.startswith(name) and " " in line and "{" not in line:
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"{name} not found in exposition")


def start(workers=2, inline=False, registry=None, drain_timeout=30.0):
    return start_server_thread(
        ServeConfig(
            port=0,
            http_port=0,
            workers=workers,
            inline=inline,
            drain_timeout=drain_timeout,
            quiet=True,
        ),
        registry=registry,
    )


def test_eight_concurrent_replay_clients_match_batch(all_profiles, tmp_path):
    """≥8 concurrent clients over real sockets; merged == batch."""
    records = all_profiles["db"].records
    end_time = all_profiles["db"].end_time
    log = write_v2_log(tmp_path / "db.dlog2", records, end_time=end_time)
    nclients = 8
    registry = MetricsRegistry()
    handle = start(workers=2, registry=registry)
    host, port = handle.ingest_addr
    acks = []
    errors = []

    def client(index: int) -> None:
        try:
            # Both replay flavours run concurrently: raw byte copies
            # and full record re-encodes (the live-profiler cost path).
            mode = "records" if index % 4 == 0 else "raw"
            acks.append(replay_log(log, host, port, mode=mode))
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(nclients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors
    assert len(acks) == nclients
    assert all(ack["ok"] and not ack["truncated"] for ack in acks)
    assert all(ack["records"] == len(records) for ack in acks)

    batch = DragAnalysis(list(records) * nclients)
    for table in ("site", "nested", "never_used"):
        served = fetch_rankings(handle.http_addr, top=None, table=table)
        assert served == rankings_payload(batch, top=None, table=table)

    summary = fetch_json(handle.http_addr, "/summary")
    assert summary["objects"] == len(records) * nclients
    assert len(summary["streams"]) == nclients
    assert not any(s["truncated"] for s in summary["streams"])
    assert sum(s["records"] for s in summary["shards"]) == len(records) * nclients

    text = fetch_metrics_text(handle.http_addr)
    assert metric_value(text, "repro_serve_streams_total") == nclients
    assert metric_value(text, "repro_serve_records_total") == len(records) * nclients
    assert metric_value(text, "repro_serve_truncated_streams_total") == 0
    assert metric_value(text, "repro_serve_active_clients") == 0
    assert metric_value(text, "repro_serve_merges_total") >= 1
    assert "repro_serve_shard_records_total" in text
    assert "repro_serve_merge_seconds_bucket" in text

    final = handle.stop()
    assert not handle.thread.is_alive()
    assert rankings_payload(final, top=None) == rankings_payload(batch, top=None)


def test_mid_frame_disconnect_counts_truncated_and_poisons_nothing(tmp_path):
    records = [
        make_record(handle=i, site_label=f"Site.m:{i % 7}", last_use=0)
        for i in range(200)
    ]
    log = write_v2_log(tmp_path / "full.dlog2", records, end_time=5000)
    data = log.read_bytes()
    cut = len(data) * 6 // 10  # far from any frame boundary on purpose
    prefix = tmp_path / "prefix.dlog2"
    prefix.write_bytes(data[:cut])
    # What the daemon *should* keep: every complete frame of the prefix —
    # exactly what the lenient file reader recovers.
    kept = read_v2_log(prefix, strict=False).records
    assert 0 < len(kept) < len(records)

    registry = MetricsRegistry()
    handle = start(workers=2, inline=True, registry=registry)
    host, port = handle.ingest_addr

    with socket.create_connection((host, port), timeout=30) as sock:
        fp = sock.makefile("rwb")
        fp.write(encode_hello({"program": "dying-client"}))
        fp.write(data[:cut])
        fp.flush()
        ack = read_json_frame_sync(fp)
        assert ack["ok"]
        sock.shutdown(socket.SHUT_WR)  # die mid-frame
        fin = read_json_frame_sync(fp)
    assert fin["truncated"] is True
    assert fin["ok"] is False
    assert fin["records"] == len(kept)

    # The shard state is not poisoned: a healthy stream afterwards
    # aggregates on top of the prefix's complete frames.
    ack = replay_log(log, host, port, mode="raw")
    assert ack["ok"] and ack["records"] == len(records)

    batch = DragAnalysis(kept + list(records))
    served = fetch_rankings(handle.http_addr, top=None)
    assert served == rankings_payload(batch, top=None)

    text = fetch_metrics_text(handle.http_addr)
    assert metric_value(text, "repro_serve_truncated_streams_total") == 1
    assert metric_value(text, "repro_serve_streams_total") == 2

    summary = fetch_json(handle.http_addr, "/summary")
    flags = sorted(s["truncated"] for s in summary["streams"])
    assert flags == [False, True]
    handle.stop()


def test_garbage_after_handshake_is_truncated_not_fatal():
    handle = start(workers=1, inline=True)
    host, port = handle.ingest_addr
    with socket.create_connection((host, port), timeout=30) as sock:
        fp = sock.makefile("rwb")
        fp.write(encode_hello())
        fp.write(b"this is not a v2 log at all")
        fp.flush()
        read_json_frame_sync(fp)  # ACK
        sock.shutdown(socket.SHUT_WR)
        fin = read_json_frame_sync(fp)
    assert fin["truncated"] is True
    # the daemon is still fully alive
    assert fetch_json(handle.http_addr, "/healthz")["ok"] is True
    handle.stop()


def test_serve_sink_streams_live_profile():
    """ServeSink is a ProfileSink: drive it event by event."""
    records = [
        make_record(handle=i, site_label=f"Live.m:{i % 3}", last_use=0)
        for i in range(60)
    ]
    handle = start(workers=1, inline=True)
    host, port = handle.ingest_addr
    sink = ServeSink(host, port, metadata={"program": "live.mj"})
    assert sink.stream_id == 1
    for record in records:
        sink.on_record(record)
    sink.on_sample(HeapSample(500, 4096, 10))
    sink.on_end(end_time=9999, finalizer_errors=2)
    assert sink.server_records == len(records)
    assert sink.server_truncated is False

    summary = fetch_json(handle.http_addr, "/summary")
    assert summary["objects"] == len(records)
    assert summary["samples"] == 1
    assert summary["end_time"] == 9999
    assert summary["streams"][0]["metadata"] == {"program": "live.mj"}

    served = fetch_rankings(handle.http_addr, top=None)
    assert served == rankings_payload(DragAnalysis(records), top=None)
    handle.stop()


def test_serve_sink_refuses_dead_daemon():
    from repro.errors import ProfileError

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
    with pytest.raises(ProfileError, match="cannot reach serve daemon"):
        ServeSink("127.0.0.1", free_port, timeout=2.0)


def test_healthz_and_drain_lifecycle():
    handle = start(workers=1, inline=True)
    health = fetch_json(handle.http_addr, "/healthz")
    assert health["ok"] is True
    assert health["draining"] is False
    assert health["shards"] == 1
    final = handle.stop()
    assert final is not None
    assert not handle.thread.is_alive()


def test_follow_server_polls_rankings(tmp_path):
    """``repro watch --follow`` reads the daemon and feeds the same
    ``repro_live_*`` gauges the file-tail watcher does."""
    from repro.stream.watch import follow_server

    records = [
        make_record(handle=i, site_label=f"W.m:{i % 2}", last_use=0)
        for i in range(40)
    ]
    handle = start(workers=1, inline=True)
    host, port = handle.ingest_addr
    replay_path = write_v2_log(tmp_path / "w.dlog2", records, end_time=777)
    replay_log(replay_path, host, port, mode="raw")

    out = io.StringIO()
    registry = MetricsRegistry()
    hostport = f"{handle.http_addr[0]}:{handle.http_addr[1]}"
    summary = follow_server(
        hostport, once=True, top=5, out=out, registry=registry
    )
    assert summary["objects"] == len(records)
    rendered = out.getvalue()
    assert "repro watch" in rendered
    assert "W.m:" in rendered
    exposition = registry.exposition()
    assert metric_value(exposition, "repro_live_records_seen") == len(records)
    handle.stop()
