"""Shared profiles for the serve-daemon tests.

The merge-equals-batch property is claimed for *every* benchmark, so
the fixture profiles all nine once per session (the same cost the
engine-equivalence suite already pays) and the property test shards
each record stream K ways from there.
"""

import pytest

from repro.benchmarks.registry import all_benchmarks
from repro.benchmarks.runner import compile_benchmark
from repro.core.profiler import profile_program

BENCHMARK_NAMES = sorted(all_benchmarks())


@pytest.fixture(scope="session")
def all_profiles():
    out = {}
    for name, bench in sorted(all_benchmarks().items()):
        program = compile_benchmark(bench, revised=False)
        out[name] = profile_program(
            program, bench.args_for("primary"), interval_bytes=bench.interval_bytes
        )
    return out
