"""Serve wire protocol: handshake framing, host:port parsing, sharding."""

import asyncio
import io
import zlib

import pytest

from repro.serve.protocol import (
    DEFAULT_PORT,
    HELLO_MAGIC,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_json_frame,
    encode_hello,
    encode_json_frame,
    parse_hostport,
    read_hello,
    read_json_frame_sync,
)
from repro.serve.shard import partition_records, site_shard
from tests.core.test_analyzer import make_record


def run_hello(data: bytes) -> dict:
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_hello(reader)

    return asyncio.run(go())


def test_json_frame_roundtrip():
    obj = {"ok": True, "stream_id": 7, "nested": {"a": [1, 2]}}
    data = encode_json_frame(obj)
    decoded, pos = decode_json_frame(data)
    assert decoded == obj
    assert pos == len(data)
    # and through the blocking reader used by clients
    assert read_json_frame_sync(io.BytesIO(data)) == obj


def test_json_frame_sync_truncation_raises():
    data = encode_json_frame({"k": "v" * 100})
    with pytest.raises(ProtocolError):
        read_json_frame_sync(io.BytesIO(data[:-5]))
    with pytest.raises(ProtocolError):
        read_json_frame_sync(io.BytesIO(b""))


def test_hello_roundtrip():
    data = encode_hello({"program": "Main.mj", "run": "primary"})
    assert data.startswith(HELLO_MAGIC + bytes([PROTOCOL_VERSION]))
    metadata = run_hello(data)
    assert metadata == {"program": "Main.mj", "run": "primary"}


def test_hello_without_metadata_is_empty_dict():
    assert run_hello(encode_hello()) == {}


def test_hello_bad_magic_rejected():
    data = b"NOPE" + bytes([PROTOCOL_VERSION]) + encode_json_frame({})
    with pytest.raises(ProtocolError):
        run_hello(data)


def test_hello_bad_version_rejected():
    data = HELLO_MAGIC + bytes([99]) + encode_json_frame({"protocol": 99})
    with pytest.raises(ProtocolError):
        run_hello(data)


def test_hello_cut_before_frame_rejected():
    with pytest.raises(ProtocolError):
        run_hello(HELLO_MAGIC)


def test_parse_hostport():
    assert parse_hostport("example.com:9000") == ("example.com", 9000)
    assert parse_hostport("example.com") == ("example.com", DEFAULT_PORT)
    assert parse_hostport(":9000") == ("127.0.0.1", 9000)
    assert parse_hostport("host", default_port=1234) == ("host", 1234)
    with pytest.raises(ProtocolError):
        parse_hostport("host:notaport")


def test_site_shard_is_crc32_stable():
    """The partitioner must agree across processes and runs, so it is
    pinned to crc32 — not the PYTHONHASHSEED-randomized ``hash()``."""
    assert site_shard("App.m:1", 8) == 4185199232 % 8
    assert site_shard("Hot.site:1", 8) == 2634495724 % 8
    assert site_shard("B.use:9", 8) == 257351711 % 8
    for label in ("App.m:1", "Hot.site:1", "B.use:9"):
        assert site_shard(label, 8) == zlib.crc32(label.encode()) % 8
        assert 0 <= site_shard(label, 3) < 3


def test_partition_records_covers_and_groups_by_site():
    records = [
        make_record(handle=i, site_label=f"Site.m:{i % 5}") for i in range(50)
    ]
    shards = partition_records(records, 4)
    assert sum(len(s) for s in shards) == len(records)
    for index, shard in enumerate(shards):
        for record in shard:
            assert site_shard(record.site_label, 4) == index
