"""Byte-weighted sampling through the serve daemon.

Three layers of the serve path carry weights: client-side resampling
in ``replay_log``, server-side resampling at ingest (without decoding
records), and the weighted shard merge behind /rankings and /summary.
"""

import pytest

from repro.core.analyzer import DragAnalysis
from repro.core.sampler import ByteSampler
from repro.obs.metrics import MetricsRegistry
from repro.serve.client import (
    fetch_json,
    fetch_metrics_text,
    fetch_rankings,
    replay_log,
)
from repro.serve.merge import prove_merge_equals_batch, rankings_payload
from repro.serve.server import ServeConfig, start_server_thread
from tests.serve.test_server import metric_value, write_v2_log


def start(registry=None, sample_bytes=None, seed=0, workers=2):
    return start_server_thread(
        ServeConfig(
            port=0,
            http_port=0,
            workers=workers,
            quiet=True,
            sample_bytes=sample_bytes,
            seed=seed,
        ),
        registry=registry,
    )


def sampled_records(profile, sample_bytes=400, seed=0):
    sampler = ByteSampler(sample_bytes, seed=seed)
    out = []
    for record in profile.records:
        weight = sampler.sample(record.size)
        if weight:
            out.append(record if weight == 1.0 else record.with_weight(weight))
    return out


def test_weighted_merge_equals_batch(all_profiles):
    """The merge-equals-batch proof holds verbatim on weighted
    records: weights ride inside the records, so shard aggregation
    and the batch analyzer see identical inputs."""
    for name in ("db", "euler"):
        records = sampled_records(all_profiles[name])
        assert any(r.weight != 1.0 for r in records)
        proof = prove_merge_equals_batch(records, shard_counts=(1, 2, 4, 8))
        assert proof["splits_checked"] > 0


def test_rankings_payload_carries_est_fields(all_profiles):
    records = sampled_records(all_profiles["db"])
    payload = rankings_payload(DragAnalysis(records), top=None)
    assert 0 < payload["effective_sample_rate"] < 1
    assert payload["est_total_drag"] > 0
    for entry in payload["sites"]:
        assert "est_drag" in entry and "est_objects" in entry
    # at full rate the est fields collapse to the observed ints
    full = rankings_payload(DragAnalysis(all_profiles["db"].records), top=None)
    assert full["effective_sample_rate"] == 1.0
    assert full["est_total_drag"] == full["total_drag"]
    for entry in full["sites"]:
        assert entry["est_drag"] == entry["drag"]


def test_server_side_resampling(all_profiles, tmp_path):
    """A daemon started with --sample-bytes thins full-rate streams at
    ingest and serves weight-corrected estimates of the full load."""
    profile = all_profiles["db"]
    log = write_v2_log(
        tmp_path / "db.dlog2", profile.records, end_time=profile.end_time
    )
    registry = MetricsRegistry()
    handle = start(registry=registry, sample_bytes=400, seed=0)
    try:
        host, port = handle.ingest_addr
        ack = replay_log(log, host, port)
        assert ack["ok"]
        summary = fetch_json(handle.http_addr, "/summary")
        assert summary["sample_bytes"] == 400
        assert 0 < summary["objects"] < len(profile.records)
        assert 0 < summary["effective_sample_rate"] < 1
        full = DragAnalysis(profile.records)
        assert summary["est_total_bytes"] == pytest.approx(
            full.total_bytes, rel=0.15
        )
        assert summary["est_total_drag"] == pytest.approx(
            full.total_drag, rel=0.2
        )
        assert summary["streams"][0]["sampled_out"] == len(
            profile.records
        ) - summary["objects"]

        text = fetch_metrics_text(handle.http_addr)
        assert 0 < metric_value(text, "repro_serve_effective_sample_rate") < 1
        assert metric_value(text, "repro_serve_sampled_out_records_total") > 0
        assert metric_value(
            text, "repro_serve_weighted_bytes_total"
        ) == pytest.approx(full.total_bytes, rel=0.15)
    finally:
        handle.stop()


def test_client_side_resampling(all_profiles, tmp_path):
    """``replay_log(..., sample_bytes=N)`` thins before the socket; the
    daemon (no sampling configured) still reports weighted estimates
    because the weights arrive inside the records."""
    profile = all_profiles["euler"]
    log = write_v2_log(
        tmp_path / "euler.dlog2", profile.records, end_time=profile.end_time
    )
    handle = start()
    try:
        host, port = handle.ingest_addr
        ack = replay_log(log, host, port, sample_bytes=300, seed=1)
        assert ack["ok"]
        assert ack["sent"] < len(profile.records)
        summary = fetch_json(handle.http_addr, "/summary")
        assert summary["sample_bytes"] is None  # server itself full-rate
        assert summary["effective_sample_rate"] < 1
        full = DragAnalysis(profile.records)
        assert summary["est_total_bytes"] == pytest.approx(
            full.total_bytes, rel=0.15
        )
    finally:
        handle.stop()


def test_full_rate_serve_metrics_stay_exact(all_profiles, tmp_path):
    """Without sampling anywhere, the weighted counters equal the
    observed ones and the rate gauge is exactly 1 — the CI smoke greps
    for the literal ``1``."""
    profile = all_profiles["db"]
    log = write_v2_log(
        tmp_path / "db.dlog2", profile.records, end_time=profile.end_time
    )
    registry = MetricsRegistry()
    handle = start(registry=registry)
    try:
        host, port = handle.ingest_addr
        replay_log(log, host, port)
        text = fetch_metrics_text(handle.http_addr)
        assert metric_value(text, "repro_serve_effective_sample_rate") == 1.0
        assert "repro_serve_effective_sample_rate 1\n" in text
        assert metric_value(
            text, "repro_serve_weighted_records_total"
        ) == len(profile.records)
        assert metric_value(text, "repro_serve_weighted_bytes_total") == sum(
            r.size for r in profile.records
        )
        assert metric_value(text, "repro_serve_sampled_out_records_total") == 0
        summary = fetch_json(handle.http_addr, "/summary")
        assert summary["effective_sample_rate"] == 1.0
        assert summary["est_total_drag"] == summary["total_drag"]
    finally:
        handle.stop()


def test_sampled_replay_matches_direct_aggregation(all_profiles, tmp_path):
    """Determinism end-to-end: replaying with a pinned seed produces
    exactly the rankings of aggregating the same resample locally."""
    profile = all_profiles["db"]
    log = write_v2_log(
        tmp_path / "db.dlog2", profile.records, end_time=profile.end_time
    )
    expected = rankings_payload(
        DragAnalysis(sampled_records(profile, sample_bytes=300, seed=7)), top=None
    )
    handle = start()
    try:
        host, port = handle.ingest_addr
        replay_log(log, host, port, sample_bytes=300, seed=7)
        served = fetch_rankings(handle.http_addr, top=None)
        assert served == expected
    finally:
        handle.stop()
