"""Merge-equals-batch: the property that makes sharded serving honest.

The daemon's answer is ``merge(shard snapshots)``; the offline answer
is batch :class:`DragAnalysis` over the concatenated records. The
property test shards every benchmark's record stream K ways for
K in {1, 2, 4, 8} — both by the daemon's own site-hash partitioner and
by a seeded uniformly random assignment — and requires the *full*
rankings payloads (site, nested, and never-used tables) to be equal.
"""

import pytest

from repro.core.analyzer import DragAnalysis
from repro.serve.merge import (
    merge_snapshots,
    prove_merge_equals_batch,
    rankings_payload,
    render_rankings_text,
)
from repro.stream.aggregate import StreamingDragAnalysis
from tests.core.test_analyzer import make_record
from tests.serve.conftest import BENCHMARK_NAMES


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_merge_equals_batch_for_every_benchmark(all_profiles, name):
    records = all_profiles[name].records
    # timelines=True extends the claim to the full /timeline payload:
    # every bin of every series, site strip, and histogram bucket.
    proof = prove_merge_equals_batch(
        records,
        shard_counts=(1, 2, 4, 8),
        timelines=True,
        end_time=all_profiles[name].end_time,
    )
    assert proof["records"] == len(records)
    # site-hash split + random split, for each of the four K values
    assert proof["splits_checked"] == 8
    assert proof["sites"] > 0
    assert proof["timeline_bins"] > 0


def test_merge_detects_inequality():
    """The proof is falsifiable: perturbing one record breaks it."""
    records = [make_record(handle=i, last_use=0) for i in range(8)]
    tampered = list(records)
    tampered[3] = make_record(handle=3, last_use=900)
    merged = merge_snapshots([StreamingDragAnalysis().consume(tampered)])
    batch = DragAnalysis(records)
    assert rankings_payload(merged) != rankings_payload(batch)


def test_rankings_payload_top_k_truncates():
    records = [
        make_record(handle=i, site_label=f"Site.m:{i}", last_use=500)
        for i in range(10)
    ]
    analysis = DragAnalysis(records)
    payload = rankings_payload(analysis, top=3)
    assert len(payload["sites"]) == 3
    assert [entry["rank"] for entry in payload["sites"]] == [1, 2, 3]
    full = rankings_payload(analysis, top=None)
    assert len(full["sites"]) == 10
    # top-k is a prefix of the full ranking
    assert full["sites"][:3] == payload["sites"]


def test_rankings_payload_tables():
    records = [make_record(handle=1, last_use=0)]
    analysis = DragAnalysis(records)
    assert rankings_payload(analysis, table="site")["table"] == "site"
    assert rankings_payload(analysis, table="nested")["table"] == "nested"
    never = rankings_payload(analysis, table="never_used")
    assert never["table"] == "never_used"
    # last_use=0 means the object was never used: it must show up here
    assert never["sites"]
    with pytest.raises(ValueError):
        rankings_payload(analysis, table="bogus")


def test_rankings_payload_drag_share_sums_to_one():
    records = [
        make_record(handle=i, site_label=f"S.m:{i % 3}", last_use=0)
        for i in range(30)
    ]
    payload = rankings_payload(DragAnalysis(records))
    assert sum(e["drag_share"] for e in payload["sites"]) == pytest.approx(1.0)


def test_merge_snapshots_of_nothing_is_empty():
    merged = merge_snapshots([])
    assert merged.object_count == 0
    assert merged.total_drag == 0
    assert rankings_payload(merged)["sites"] == []


def test_render_rankings_text_mentions_sites():
    records = [make_record(handle=1, site_label="Hot.alloc:7", last_use=0)]
    payload = rankings_payload(DragAnalysis(records))
    text = render_rankings_text(payload, summary={"streams": [], "active_clients": 0})
    assert "Hot.alloc:7" in text
    assert "Drag report" in text
