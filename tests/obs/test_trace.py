"""Tracer spans: nesting, clocks, Chrome trace export/import, render."""

import json

import pytest

from repro.obs import Span, TraceError, Tracer, read_chrome_trace, render_span_tree


class TestSpanNesting:
    def test_sibling_and_child_ordering(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                with tracer.span("grandchild"):
                    pass
        assert [s.name for s in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["first", "second"]
        assert [c.name for c in outer.children[1].children] == ["grandchild"]

    def test_multiple_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.roots] == ["a", "b"]

    def test_span_records_wall_duration(self):
        tracer = Tracer()
        with tracer.span("timed"):
            pass
        span = tracer.roots[0]
        assert span.end_wall is not None
        assert span.wall_seconds >= 0.0

    def test_byte_clock_interval(self):
        clock = {"value": 100}
        tracer = Tracer(clock_fn=lambda: clock["value"])
        with tracer.span("alloc"):
            clock["value"] += 64
        span = tracer.roots[0]
        assert span.start_clock == 100
        assert span.end_clock == 164
        assert span.clock_bytes == 64

    def test_no_clock_bound_means_no_clock_interval(self):
        tracer = Tracer()
        with tracer.span("wall-only"):
            pass
        assert tracer.roots[0].clock_bytes is None

    def test_bind_clock_midway(self):
        tracer = Tracer()
        with tracer.span("before"):
            pass
        tracer.bind_clock(lambda: 7)
        with tracer.span("after"):
            pass
        assert tracer.roots[0].clock_bytes is None
        assert tracer.roots[1].clock_bytes == 0

    def test_error_recorded_in_args(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        span = tracer.roots[0]
        assert span.args["error"] == "ValueError"
        assert span.end_wall is not None  # closed despite the raise

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("invisible") as span:
            assert span is None
        assert tracer.roots == []

    def test_span_kwargs_become_args(self):
        tracer = Tracer()
        with tracer.span("tagged", category="gc", kind="major") as span:
            pass
        assert span.category == "gc"
        assert span.args == {"kind": "major"}


class TestChromeTraceExport:
    def _trace(self):
        clock = {"value": 0}
        tracer = Tracer(clock_fn=lambda: clock["value"])
        with tracer.span("root", category="cli"):
            clock["value"] += 512
            with tracer.span("child", category="gc", kind="major"):
                clock["value"] += 256
        return tracer

    def test_schema(self):
        data = self._trace().to_chrome_trace()
        assert set(data) == {"traceEvents", "displayTimeUnit", "otherData"}
        events = data["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 1 and event["tid"] == 1
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["dur"] >= 0
        root, child = events
        assert root["name"] == "root" and root["cat"] == "cli"
        assert child["name"] == "child" and child["cat"] == "gc"
        assert child["args"]["kind"] == "major"
        assert root["args"]["clock_bytes"] == 768
        assert child["args"]["clock_bytes"] == 256

    def test_json_serializable_and_loadable(self, tmp_path):
        path = tmp_path / "trace.json"
        tracer = self._trace()
        tracer.write_chrome_trace(str(path))
        data = json.loads(path.read_text())
        assert data["traceEvents"][0]["name"] == "root"

    def test_round_trip_rebuilds_nesting(self, tmp_path):
        path = tmp_path / "trace.json"
        self._trace().write_chrome_trace(str(path))
        roots = read_chrome_trace(str(path))
        assert [s.name for s in roots] == ["root"]
        assert [c.name for c in roots[0].children] == ["child"]
        assert roots[0].children[0].clock_bytes == 256
        assert roots[0].children[0].args == {"kind": "major"}

    def test_bare_array_form_accepted(self, tmp_path):
        path = tmp_path / "bare.json"
        events = self._trace().to_chrome_trace()["traceEvents"]
        path.write_text(json.dumps(events))
        roots = read_chrome_trace(str(path))
        assert [s.name for s in roots] == ["root"]

    def test_not_json_raises(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json {")
        with pytest.raises(TraceError, match="not JSON"):
            read_chrome_trace(str(path))

    def test_no_events_array_raises(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(TraceError, match="traceEvents"):
            read_chrome_trace(str(path))


class TestRenderSpanTree:
    def _span(self, name, start, dur, children=()):
        span = Span(name, "repro", start, None)
        span.end_wall = start + dur
        span.children = list(children)
        return span

    def test_empty(self):
        assert render_span_tree([]) == "(empty trace)"

    def test_same_named_siblings_collapse(self):
        children = [self._span("gc.deep", i * 0.1, 0.01) for i in range(3)]
        root = self._span("run", 0.0, 1.0, children)
        text = render_span_tree([root])
        assert "gc.deep x3" in text
        assert text.count("gc.deep") == 1  # one aggregated line

    def test_distinct_names_stay_separate(self):
        root = self._span(
            "run", 0.0, 1.0,
            [self._span("plan", 0.0, 0.1), self._span("apply", 0.2, 0.1)],
        )
        lines = render_span_tree([root]).splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("run")
        assert "plan" in lines[1] and "apply" in lines[2]

    def test_tracer_span_tree_shortcut(self):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        assert tracer.span_tree().startswith("only")
