"""The streaming-timeline contracts (PR 10).

Four claims, each pinned here:

1. **Streaming == post-hoc.** The timeline built incrementally during
   a live run (one ``TimelineSink.on_record`` per reclaimed object) is
   bit-identical — ``==`` on the full JSON payload — to one recomputed
   after the fact from the v2 log the same run wrote.
2. **Merge == batch.** K-way sharded builders merge to the batch
   payload (``prove_merge_equals_batch(..., timelines=True)``),
   including a byte-sampled leg where every cell is a weighted sum.
3. **Weight-corrected.** Under ``--sample-bytes`` the ``est_*`` series
   are unbiased within the PR 8 tolerances.
4. **Useful surfaces.** The exact batch curves fall out of the builder
   (``curve``), truncated logs degrade gracefully, the HTML dashboard
   is well-formed with stable element ids, and the serve daemon's
   ``GET /timeline`` equals the batch payload with markers spliced in.
"""

import json
from html.parser import HTMLParser

import pytest

from repro.core.integrals import curve_from_records
from repro.core.sampler import ByteSampler
from repro.obs.htmlreport import render_html
from repro.obs.timeline import (
    DEFAULT_BIN_BYTES,
    KINDS,
    TimelineBuilder,
    format_bytes,
    render_timeline_text,
    sparkline,
)
from repro.serve.merge import prove_merge_equals_batch
from repro.stream.codec import read_v2_log
from tests.obs.conftest import TIMELINE_BENCHES

SAMPLE_BYTES = 500  # the PR 8 accuracy-gate configuration
SEED = 0
TOLERANCE = 0.10


def rebuild(records, samples=(), end_time=None, bin_bytes=DEFAULT_BIN_BYTES):
    builder = TimelineBuilder(bin_bytes=bin_bytes).consume(records)
    for sample in samples:
        builder.add_sample(sample)
    builder.note_end(end_time)
    return builder


def resample(records, sample_bytes=SAMPLE_BYTES, seed=SEED):
    """The replay-client reweighting: keep survivors with composed
    Horvitz-Thompson weights."""
    sampler = ByteSampler(sample_bytes, seed=seed)
    out = []
    for record in records:
        w = sampler.sample(record.size)
        if w:
            out.append(record.with_weight(w * record.weight))
    return out


@pytest.mark.parametrize("name", TIMELINE_BENCHES)
def test_streaming_equals_posthoc_from_log(timeline_profiles, name):
    """The live builder's payload equals a recompute from the log the
    same run streamed to disk — records, markers, end time, and all."""
    result, path, live = timeline_profiles[name]
    loaded = read_v2_log(path)
    assert len(loaded.records) == len(result.records)
    posthoc = rebuild(loaded.records, loaded.samples, loaded.end_time)
    assert posthoc.payload(top=None) == live.payload(top=None)
    # ... and equals a rebuild from the in-memory records too.
    buffered = rebuild(result.records, result.samples, result.end_time)
    assert buffered.payload(top=None) == live.payload(top=None)


@pytest.mark.parametrize("name", TIMELINE_BENCHES)
def test_timeline_merge_equals_batch(timeline_profiles, name):
    result, _, _ = timeline_profiles[name]
    proof = prove_merge_equals_batch(
        result.records,
        shard_counts=(2, 4),
        timelines=True,
        end_time=result.end_time,
    )
    assert proof["timeline_bins"] > 0
    assert proof["timeline_bin_bytes"] == DEFAULT_BIN_BYTES


def test_timeline_merge_equals_batch_with_sampled_weights(timeline_profiles):
    """The sharded-merge proof must hold when every cell is a weighted
    float sum, not just the int fast path."""
    result, _, _ = timeline_profiles["db"]
    weighted = resample(result.records)
    assert any(r.weight != 1.0 for r in weighted)
    proof = prove_merge_equals_batch(
        weighted, shard_counts=(2, 4), timelines=True, end_time=result.end_time
    )
    assert proof["timeline_bins"] > 0


@pytest.mark.parametrize("name", TIMELINE_BENCHES)
def test_weighted_series_within_tolerance(timeline_profiles, name):
    """est_* totals from a byte-sampled stream stay within the PR 8
    accuracy envelope of the full-stream truth; the observed series
    collapse to exactly the estimates at full rate."""
    result, _, full = timeline_profiles[name]
    sampled = rebuild(resample(result.records), end_time=result.end_time)
    payload = sampled.payload(top=None)
    assert payload["sampled"] is True
    assert payload["effective_sample_rate"] < 1.0
    assert payload["est_total_bytes"] == pytest.approx(
        full.total_bytes, rel=TOLERANCE
    )
    assert payload["est_total_drag"] == pytest.approx(
        full.total_drag, rel=TOLERANCE
    )
    # Full-rate streams: est series are the very same integers.
    full_payload = full.payload(top=None)
    assert full_payload["sampled"] is False
    for kind in KINDS:
        entry = full_payload["series"][kind]
        assert entry["est_values"] == entry["values"]


@pytest.mark.parametrize("name", TIMELINE_BENCHES)
def test_series_bin_sums_conserve_exact_integrals(timeline_profiles, name):
    """Bins tile the whole byte-clock span, so each series' bin sum
    must equal the exact space-time total computed straight from the
    records — this pins the inlined head/tail/body bin arithmetic in
    ``TimelineBuilder.add`` against an independent ground truth."""
    from repro.core.integrals import _interval

    result, _, live = timeline_profiles[name]
    payload = live.payload(top=None)

    def exact_total(kind):
        total = 0
        for r in result.records:
            span = _interval(r, kind)
            if span is not None and span[1] > span[0]:
                total += r.size * (span[1] - span[0])
        return total

    for kind in KINDS:
        assert sum(payload["series"][kind]["values"]) == exact_total(kind)
    # Sites partition the records, so their drag strips conserve too.
    assert sum(
        sum(site["values"]) for site in payload["sites"]
    ) == exact_total("drag")
    assert payload["total_drag"] == exact_total("drag")


@pytest.mark.parametrize("name", TIMELINE_BENCHES)
def test_curves_match_batch(timeline_profiles, name):
    """The streaming builder reproduces the exact batch heap curves."""
    result, _, live = timeline_profiles[name]
    for kind in KINDS:
        batch = curve_from_records(result.records, kind)
        got = live.curve(kind)
        assert got.times == batch.times
        assert got.values == batch.values


def test_truncated_log_tolerated(timeline_profiles, tmp_path):
    """A mid-frame-truncated log (crashed run) still yields a timeline
    over every complete record."""
    result, path, live = timeline_profiles["db"]
    data = path.read_bytes()
    cut = tmp_path / "cut.dlog2"
    cut.write_bytes(data[: len(data) * 6 // 10])
    loaded = read_v2_log(cut, strict=False)
    assert 0 < len(loaded.records) < len(result.records)
    builder = rebuild(loaded.records, loaded.samples, loaded.end_time)
    payload = builder.payload()
    assert payload["objects"] == len(loaded.records)
    assert payload["bins"] > 0
    assert render_timeline_text(payload)  # renders without the END frame


class _IdCollector(HTMLParser):
    def __init__(self):
        super().__init__()
        self.ids = []
        self.errors = []

    def handle_starttag(self, tag, attrs):
        for key, value in attrs:
            if key == "id":
                self.ids.append(value)


def test_html_report_well_formed(timeline_profiles):
    result, _, live = timeline_profiles["db"]
    payload = live.payload(top=5)
    snapshots = [
        {"time": time, "retained_bytes": reachable}
        for time, reachable, _ in payload["samples"][:3]
    ]
    doc = render_html(payload, title="db timeline", snapshots=snapshots)
    parser = _IdCollector()
    parser.feed(doc)
    parser.close()
    ids = set(parser.ids)
    for required in (
        "figure2",
        "series-reachable",
        "series-in_use",
        "series-drag",
        "lifetime-hist",
        "snapshot-markers",
    ):
        assert required in ids, f"missing element id {required!r}"
    strips = [i for i in parser.ids if i.startswith("site-strip-")]
    assert len(strips) == len(payload["sites"])
    assert "retained" in doc  # marker tooltips joined with snapshot data
    # Payloads must survive a JSON round trip unchanged (the serve path).
    assert json.loads(json.dumps(payload)) == payload


def test_html_report_empty_payload_keeps_ids():
    doc = render_html(TimelineBuilder().payload())
    for required in ("series-reachable", "series-in_use", "series-drag"):
        assert required in doc


def test_serve_timeline_endpoint_equals_batch(timeline_profiles):
    """GET /timeline from a sharded daemon == the batch payload, with
    the loop-side deep-GC markers spliced in; a second, byte-resampled
    replay keeps the estimates within tolerance."""
    from repro.serve.client import fetch_json, fetch_metrics_text, replay_log
    from repro.serve.server import ServeConfig, start_server_thread

    result, log, _ = timeline_profiles["db"]
    handle = start_server_thread(
        ServeConfig(port=0, http_port=0, workers=3, inline=True, quiet=True)
    )
    try:
        host, port = handle.ingest_addr
        ack = replay_log(str(log), host, port)
        assert ack["ok"]
        served = fetch_json(handle.http_addr, "/timeline?top=all")
        expected = rebuild(result.records, end_time=result.end_time).payload(
            top=None, include_samples=False
        )
        expected["samples"] = sorted(
            [s.time, s.reachable_bytes, s.object_count] for s in result.samples
        )
        assert served == json.loads(json.dumps(expected))

        # Second client replays a resampled stream: totals double-count
        # approximately (full + estimated full), within tolerance.
        ack = replay_log(
            str(log), host, port, sample_bytes=SAMPLE_BYTES, seed=SEED
        )
        assert ack["ok"]
        served = fetch_json(handle.http_addr, "/timeline?top=1")
        assert served["sampled"] is True
        assert served["est_total_bytes"] == pytest.approx(
            2 * expected["total_bytes"], rel=TOLERANCE
        )
        assert len(served["sites"]) == 1

        text = fetch_metrics_text(handle.http_addr)
        assert "repro_timeline_requests_total 2" in text
        assert "repro_timeline_bins" in text
        assert f"repro_timeline_bin_bytes {DEFAULT_BIN_BYTES}" in text
    finally:
        handle.stop()


def test_serve_timeline_can_be_disabled():
    from urllib.error import HTTPError

    from repro.serve.client import fetch_json
    from repro.serve.server import ServeConfig, start_server_thread

    handle = start_server_thread(
        ServeConfig(
            port=0, http_port=0, workers=1, inline=True, quiet=True,
            timeline_bin_bytes=0,
        )
    )
    try:
        with pytest.raises(HTTPError):
            fetch_json(handle.http_addr, "/timeline")
    finally:
        handle.stop()


def test_sparkline_and_render_shapes():
    assert sparkline([]) == ""
    assert sparkline([0, 0]) == "▁▁"
    line = sparkline(list(range(100)), width=10)
    assert len(line) == 10
    assert line[-1] == "█"
    assert format_bytes(512) == "512 B"
    assert format_bytes(64 * 1024) == "64.0 KB"
    payload = TimelineBuilder().payload()
    text = render_timeline_text(payload)
    assert "heap timeline" in text and "(empty timeline)" in text
