"""Telemetry end-to-end: instruments fire, and — the load-bearing
invariant — telemetry observes without perturbing: stdout, instruction
counts, the byte clock, and the v1/v2 profile log bytes are identical
with telemetry on or off, on both engines."""

import os

import pytest

from repro.core.profiler import HeapProfiler
from repro.benchmarks.registry import all_benchmarks
from repro.benchmarks.runner import compile_benchmark
from repro.mjava.compiler import compile_program
from repro.obs import Telemetry
from repro.runtime.engine import ENGINES, create_vm
from repro.runtime.library import link
from repro.stream.sinks import LogWriterSink, open_log_writer

SOURCE = """
class Node { Node next; int payload; }
class Main {
    public static void main(String[] args) {
        Node head = null;
        for (int i = 0; i < 200; i = i + 1) {
            Node n = new Node();
            n.payload = i;
            n.next = head;
            head = n;
        }
        int total = 0;
        while (head != null) { total = total + head.payload; head = head.next; }
        System.gc();
        System.println("total=" + total);
    }
}
"""


def _program():
    return compile_program(link(SOURCE), main_class="Main")


class TestInstrumentsFire:
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_run_metrics(self, engine):
        telemetry = Telemetry()
        vm = create_vm(_program(), engine=engine, telemetry=telemetry)
        result = vm.run([])
        assert result.stdout == ["total=19900"]
        snap = telemetry.registry.snapshot()
        assert snap["repro_vm_instructions_total"] == result.instructions
        assert snap["repro_vm_allocated_bytes_total"] == result.heap_stats.bytes_allocated
        assert snap["repro_gc_cycles_total"] == {"kind=major": result.heap_stats.gc_runs}
        assert snap["repro_gc_pause_seconds"]["count"] == result.heap_stats.gc_runs
        assert snap["repro_gc_pause_seconds"]["sum"] == pytest.approx(
            result.heap_stats.gc_pause_seconds
        )

    def test_compiled_dispatch_metrics(self):
        telemetry = Telemetry()
        vm = create_vm(_program(), engine="compiled", telemetry=telemetry)
        vm.run([])
        snap = telemetry.registry.snapshot()
        assert snap["repro_dispatch_methods_translated_total"] > 0
        assert snap["repro_dispatch_handlers_total"] > 0
        # The per-run counters were flushed and zeroed.
        assert telemetry.dispatch_stats.methods_translated == 0
        assert telemetry.dispatch_stats.ic_hits == 0

    def test_inline_cache_counts_on_virtual_calls(self):
        source = """
        class A { int f() { return 1; } }
        class B extends A { int f() { return 2; } }
        class Main {
            public static void main(String[] args) {
                A a = new A(); A b = new B();
                int total = 0;
                for (int i = 0; i < 50; i = i + 1) { total = total + a.f() + b.f(); }
                System.println("t=" + total);
            }
        }
        """
        telemetry = Telemetry()
        program = compile_program(link(source), main_class="Main")
        vm = create_vm(program, engine="compiled", telemetry=telemetry)
        result = vm.run([])
        assert result.stdout == ["t=150"]
        snap = telemetry.registry.snapshot()
        ic = snap["repro_dispatch_inline_cache_total"]
        assert ic["result=miss"] >= 2  # A.f and B.f each miss once at least
        assert ic["result=hit"] > ic["result=miss"]

    def test_profiled_run_emits_gc_spans_and_profiler_counters(self):
        from repro.core.profiler import profile_program

        telemetry = Telemetry()
        result = profile_program(
            _program(), interval_bytes=2048, telemetry=telemetry
        )
        snap = telemetry.registry.snapshot()
        assert snap["repro_profiler_records_total"] == result.profiler.record_count
        assert snap["repro_profiler_samples_total"] == result.profiler.sample_count
        assert snap["repro_gc_deep_cycles_total"] > 0
        roots = telemetry.tracer.roots
        assert [s.name for s in roots] == ["profile.run"]
        deep = [c for c in roots[0].children if c.name == "gc.deep"]
        assert deep, "no gc.deep spans nested under the run"
        # Deep GC never allocates: zero byte-clock width, always.
        assert all(s.clock_bytes == 0 for s in deep)


class TestTelemetryIsInvisible:
    """Differential: telemetry-on vs telemetry-off must be bit-identical
    in everything the paper's pipeline consumes."""

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_plain_run_identical(self, engine):
        base = create_vm(_program(), engine=engine).run([])
        traced = create_vm(
            _program(), engine=engine, telemetry=Telemetry()
        ).run([])
        assert traced.stdout == base.stdout
        assert traced.instructions == base.instructions
        assert traced.clock == base.clock
        assert traced.heap_stats.gc_runs == base.heap_stats.gc_runs

    @pytest.mark.parametrize("name", ["db", "euler"])
    @pytest.mark.parametrize("fmt,suffix", [("v1", ".draglog"), ("v2", ".dlog2")])
    def test_profile_log_bytes_identical(self, tmp_path, name, fmt, suffix):
        bench = all_benchmarks()[name]
        args = bench.args_for("primary")
        paths = {}
        for label, telemetry in (("off", None), ("on", Telemetry())):
            path = tmp_path / f"{name}-{label}{suffix}"
            sink = LogWriterSink(open_log_writer(path, fmt=fmt))
            profiler = HeapProfiler(interval_bytes=65536, sink=sink)
            vm = create_vm(
                compile_benchmark(bench, revised=False),
                engine="compiled",
                max_heap=bench.max_heap,
                profiler=profiler,
                telemetry=telemetry,
            )
            vm.run(list(args))
            sink.close()
            paths[label] = path
        assert paths["on"].read_bytes() == paths["off"].read_bytes()


class TestLintAndPipelineTelemetry:
    def test_lint_records_pass_durations_and_diagnostics(self):
        from repro.lint import lint_program

        telemetry = Telemetry()
        program = link(SOURCE)
        lint_program(program, "Main", telemetry=telemetry)
        snap = telemetry.registry.snapshot()
        passes = snap["repro_lint_pass_seconds"]
        assert "pass=callgraph" in passes
        assert any(key.startswith("pass=rule-") for key in passes)
        roots = telemetry.tracer.roots
        assert [s.name for s in roots] == ["lint.run_all"]
        assert any(c.name.startswith("lint.pass.") for c in roots[0].children)

    def test_pipeline_records_cycles_and_patches(self):
        from repro.transform.pipeline import OptimizationPipeline

        telemetry = Telemetry()
        pipeline = OptimizationPipeline(
            link(SOURCE), "Main", max_cycles=1, telemetry=telemetry
        )
        pipeline.run()
        snap = telemetry.registry.snapshot()
        assert snap["repro_optimize_cycles_total"] == 1
        assert snap["repro_optimize_drag_before"] >= 0
        names = [s.name for s in telemetry.tracer.roots]
        assert "optimize.cycle" in names


class TestLiveRegistry:
    def test_metrics_sink_updates_registry(self):
        from repro.core.profiler import profile_program
        from repro.obs import MetricsRegistry
        from repro.stream.live import MetricsSink

        registry = MetricsRegistry()
        sink = MetricsSink(registry=registry)
        result = profile_program(_program(), interval_bytes=2048, sink=sink)
        snap = registry.snapshot()
        assert snap["repro_live_finished"] == 1
        assert snap["repro_live_records_seen"] == result.profiler.record_count
        assert snap["repro_live_clock_bytes"] == result.end_time

    def test_watch_and_sink_agree(self, tmp_path):
        from repro.core.profiler import profile_program
        from repro.obs import MetricsRegistry
        from repro.stream.live import MetricsSink
        from repro.stream.sinks import TeeSink
        from repro.stream.watch import watch_log

        log = tmp_path / "run.dlog2"
        registry = MetricsRegistry()
        live = MetricsSink(registry=registry)
        writer = LogWriterSink(open_log_writer(log, fmt="v2"))
        profile_program(_program(), interval_bytes=2048, sink=TeeSink(writer, live))
        writer.close()

        watch_registry = MetricsRegistry()
        out = tmp_path / "watch.prom"
        with open(os.devnull, "w") as sink_out:
            watch_log(log, once=True, registry=watch_registry,
                      metrics_out=str(out), out=sink_out)
        assert watch_registry.snapshot() == registry.snapshot()
        assert out.read_text() == watch_registry.exposition()
