"""Metrics registry: instruments, Prometheus exposition, snapshots."""

import pytest

from repro.obs import MetricsError, MetricsRegistry


class TestCounter:
    def test_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "Requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(MetricsError, match="cannot decrease"):
            counter.inc(-1)

    def test_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "Hits", ("result",))
        counter.labels(result="hit").inc(3)
        counter.labels(result="miss").inc()
        assert counter.labels("hit").value == 3
        assert counter.labels("miss").value == 1

    def test_wrong_label_count_rejected(self):
        counter = MetricsRegistry().counter("c_total", "", ("a", "b"))
        with pytest.raises(MetricsError, match="expected labels"):
            counter.labels("only-one")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("temp")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12


class TestHistogram:
    def test_cumulative_buckets(self):
        hist = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.bucket_counts == [1, 2, 3]  # cumulative by construction
        assert hist.count == 4
        assert hist.sum == pytest.approx(55.55)

    def test_exposition_layout(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "Latency", buckets=(0.5, 2.0))
        hist.observe(0.25)
        hist.observe(1.0)
        text = registry.exposition()
        assert '# TYPE lat_seconds histogram' in text
        assert 'lat_seconds_bucket{le="0.5"} 1' in text
        assert 'lat_seconds_bucket{le="2"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert 'lat_seconds_sum 1.25' in text
        assert 'lat_seconds_count 2' in text

    def test_labeled_histogram_merges_label_sets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("p_seconds", "", ("pass",), buckets=(1.0,))
        hist.labels("a").observe(0.5)
        text = registry.exposition()
        assert 'p_seconds_bucket{pass="a",le="1"} 1' in text
        assert 'p_seconds_count{pass="a"} 1' in text

    def test_empty_buckets_rejected(self):
        with pytest.raises(MetricsError, match="at least one bucket"):
            MetricsRegistry().histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "X")
        b = registry.counter("x_total")
        assert a is b

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(MetricsError, match="already registered"):
            registry.gauge("x_total")

    def test_labelname_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "", ("a",))
        with pytest.raises(MetricsError, match="already registered"):
            registry.counter("x_total", "", ("b",))

    def test_contains_and_get(self):
        registry = MetricsRegistry()
        counter = registry.counter("present_total")
        assert "present_total" in registry
        assert registry.get("present_total") is counter
        assert registry.get("absent") is None


class TestExposition:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "B counter").inc(2)
        registry.gauge("a_gauge", "A gauge").set(7)
        labeled = registry.counter("c_total", "C", ("kind",))
        labeled.labels(kind="minor").inc()
        labeled.labels(kind="major").inc(3)
        return registry

    def test_sorted_and_parseable(self):
        text = self._populated().exposition()
        lines = text.strip().splitlines()
        # Metric families in name order: a_gauge, b_total, c_total.
        names = [l.split()[2] for l in lines if l.startswith("# TYPE")]
        assert names == ["a_gauge", "b_total", "c_total"]
        # Every sample line: <name>{labels} <value>
        for line in lines:
            if line.startswith("#"):
                parts = line.split(maxsplit=3)
                assert parts[1] in ("HELP", "TYPE")
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # parseable number
            assert name_part[0].isalpha()
        assert 'c_total{kind="major"} 3' in text
        assert 'c_total{kind="minor"} 1' in text
        assert text.endswith("\n")

    def test_label_values_sorted(self):
        text = self._populated().exposition()
        assert text.index('kind="major"') < text.index('kind="minor"')

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("esc_total", "", ("site",)).labels('a"b\\c').inc()
        assert 'site="a\\"b\\\\c"' in registry.exposition()

    def test_write_exposition(self, tmp_path):
        registry = self._populated()
        path = tmp_path / "metrics.prom"
        registry.write_exposition(str(path))
        assert path.read_text() == registry.exposition()

    def test_empty_registry(self):
        assert MetricsRegistry().exposition() == ""


class TestSnapshot:
    def test_deterministic_and_json_shaped(self):
        import json

        registry = MetricsRegistry()
        registry.counter("n_total").inc(2)
        registry.counter("l_total", "", ("k",)).labels(k="x").inc()
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        snap1 = registry.snapshot()
        snap2 = registry.snapshot()
        assert snap1 == snap2
        assert json.dumps(snap1, sort_keys=True) == json.dumps(snap2, sort_keys=True)
        assert snap1["n_total"] == 2
        assert snap1["l_total"] == {"k=x": 1}
        assert snap1["h_seconds"] == {"buckets": {"1": 1}, "sum": 0.5, "count": 1}
