"""Shared live-timeline profiles for the observability tests.

Each benchmark is profiled ONCE per session with a
:class:`~repro.obs.timeline.TimelineSink` teed into a streaming v2 log
writer — the exact ``repro profile --timeline --log x.dlog2 --sink
stream`` wiring.  Tests then get three views of the same run: the
buffered records, the on-disk log, and the incrementally-built
timeline, which is what the streaming-equals-post-hoc claims compare.
"""

import pytest

from repro.benchmarks.registry import get_benchmark
from repro.benchmarks.runner import compile_benchmark
from repro.core.profiler import profile_program

TIMELINE_BENCHES = ("db", "euler")


@pytest.fixture(scope="session")
def timeline_profiles(tmp_path_factory):
    from repro.obs.timeline import TimelineSink
    from repro.stream import LogWriterSink, TeeSink, open_log_writer

    root = tmp_path_factory.mktemp("timeline-logs")
    out = {}
    for name in TIMELINE_BENCHES:
        bench = get_benchmark(name)
        program = compile_benchmark(bench, revised=False)
        path = root / f"{name}.dlog2"
        live = TimelineSink()
        sink = TeeSink(LogWriterSink(open_log_writer(path)), live)
        result = profile_program(
            program,
            bench.args_for("primary"),
            interval_bytes=bench.interval_bytes,
            sink=sink,
            buffered=True,
        )
        out[name] = (result, path, live.builder)
    return out
