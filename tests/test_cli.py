"""The command-line tool: run / profile / report / optimize / disasm."""

import json

import pytest

from repro.cli import main

HELLO = """
class Main {
    public static void main(String[] args) {
        System.println("hello " + args.length);
        char[] wasted = new char[5000];
        for (int i = 0; i < 40; i = i + 1) { char[] junk = new char[200]; }
    }
}
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "program.mj"
    path.write_text(HELLO)
    return str(path)


def test_run_prints_program_output(program_file, capsys):
    assert main(["run", program_file, "--main", "Main", "a", "b"]) == 0
    out = capsys.readouterr().out
    assert "hello 2" in out


def test_run_stats_on_stderr(program_file, capsys):
    assert main(["run", program_file, "--main", "Main", "--stats"]) == 0
    err = capsys.readouterr().err
    assert "instructions=" in err and "gc_runs=" in err


def test_run_missing_file(capsys):
    assert main(["run", "/nonexistent.mj", "--main", "Main"]) == 2
    assert "error:" in capsys.readouterr().err


def test_run_semantic_error_reported(tmp_path, capsys):
    path = tmp_path / "bad.mj"
    path.write_text("class Main { public static void main(String[] args) { x = 1; } }")
    assert main(["run", str(path), "--main", "Main"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_uncaught_exception_exit_code(tmp_path, capsys):
    path = tmp_path / "throws.mj"
    path.write_text(
        'class Main { public static void main(String[] args) '
        '{ throw new RuntimeException("boom"); } }'
    )
    assert main(["run", str(path), "--main", "Main"]) == 3
    assert "boom" in capsys.readouterr().err


def test_profile_prints_report_by_default(program_file, capsys):
    assert main(
        ["profile", program_file, "--main", "Main", "--interval", "4096"]
    ) == 0
    captured = capsys.readouterr()
    assert "=== Drag report ===" in captured.out
    assert "Main.main" in captured.out
    assert "deep-GC samples" in captured.err


def test_profile_then_report_roundtrip(program_file, tmp_path, capsys):
    log = str(tmp_path / "run.draglog")
    assert main(
        ["profile", program_file, "--main", "Main", "--interval", "4096", "--log", log]
    ) == 0
    capsys.readouterr()
    # the log is a JSONL file with a header
    with open(log) as f:
        header = json.loads(f.readline())
    assert header["format"] == "repro-drag-log"
    assert main(["report", log, "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "=== Drag report ===" in out


def test_report_nested_grouping(program_file, tmp_path, capsys):
    log = str(tmp_path / "run.draglog")
    main(["profile", program_file, "--main", "Main", "--interval", "4096", "--log", log])
    capsys.readouterr()
    assert main(["report", log, "--nested"]) == 0
    assert "nested allocation sites" in capsys.readouterr().out


def test_report_bad_log(tmp_path, capsys):
    path = tmp_path / "bad.log"
    path.write_text("not a log\n")
    assert main(["report", str(path)]) == 2


def test_optimize_writes_revised_source(program_file, tmp_path, capsys):
    out_path = str(tmp_path / "revised.mj")
    code = main(
        ["optimize", program_file, "--main", "Main", "--interval", "4096",
         "-o", out_path]
    )
    assert code == 0
    err = capsys.readouterr().err
    assert "transformation(s) applied" in err
    revised = open(out_path).read()
    # the never-used 5000-char buffer allocation is gone
    assert "new char[5000]" not in revised
    assert "class Main" in revised


def test_disasm_single_class(program_file, capsys):
    assert main(["disasm", program_file, "--class", "Main"]) == 0
    out = capsys.readouterr().out
    assert "Main.main" in out
    assert "NEWARRAY" in out


def test_disasm_unknown_class(program_file, capsys):
    assert main(["disasm", program_file, "--class", "Ghost"]) == 2


def test_disasm_whole_program(program_file, capsys):
    assert main(["disasm", program_file]) == 0
    out = capsys.readouterr().out
    assert "class Vector" in out  # library included


def test_module_entry_point():
    import subprocess, sys

    result = subprocess.run(
        [sys.executable, "-m", "repro", "--help"], capture_output=True, text=True
    )
    assert result.returncode == 0
    assert "profile" in result.stdout


def test_chart_from_log(program_file, tmp_path, capsys):
    log = str(tmp_path / "run.draglog")
    main(["profile", program_file, "--main", "Main", "--interval", "4096", "--log", log])
    capsys.readouterr()
    assert main(["chart", log, "--width", "50", "--height", "10"]) == 0
    out = capsys.readouterr().out
    assert "MB allocated" in out
    assert "legend: # reachable   . in-use" in out
