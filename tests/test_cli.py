"""The command-line tool: run / profile / report / optimize / disasm."""

import json

import pytest

from repro.cli import main

HELLO = """
class Main {
    public static void main(String[] args) {
        System.println("hello " + args.length);
        char[] wasted = new char[5000];
        for (int i = 0; i < 40; i = i + 1) { char[] junk = new char[200]; }
    }
}
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "program.mj"
    path.write_text(HELLO)
    return str(path)


def test_run_prints_program_output(program_file, capsys):
    assert main(["run", program_file, "--main", "Main", "a", "b"]) == 0
    out = capsys.readouterr().out
    assert "hello 2" in out


def test_run_stats_on_stderr(program_file, capsys):
    assert main(["run", program_file, "--main", "Main", "--stats"]) == 0
    err = capsys.readouterr().err
    assert "instructions=" in err and "gc_runs=" in err


def test_run_missing_file(capsys):
    assert main(["run", "/nonexistent.mj", "--main", "Main"]) == 2
    assert "error:" in capsys.readouterr().err


def test_run_semantic_error_reported(tmp_path, capsys):
    path = tmp_path / "bad.mj"
    path.write_text("class Main { public static void main(String[] args) { x = 1; } }")
    assert main(["run", str(path), "--main", "Main"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_uncaught_exception_exit_code(tmp_path, capsys):
    path = tmp_path / "throws.mj"
    path.write_text(
        'class Main { public static void main(String[] args) '
        '{ throw new RuntimeException("boom"); } }'
    )
    assert main(["run", str(path), "--main", "Main"]) == 3
    assert "boom" in capsys.readouterr().err


def test_profile_prints_report_by_default(program_file, capsys):
    assert main(
        ["profile", program_file, "--main", "Main", "--interval", "4096"]
    ) == 0
    captured = capsys.readouterr()
    assert "=== Drag report ===" in captured.out
    assert "Main.main" in captured.out
    assert "deep-GC samples" in captured.err


def test_profile_then_report_roundtrip(program_file, tmp_path, capsys):
    log = str(tmp_path / "run.draglog")
    assert main(
        ["profile", program_file, "--main", "Main", "--interval", "4096", "--log", log]
    ) == 0
    capsys.readouterr()
    # the log is a JSONL file with a header
    with open(log) as f:
        header = json.loads(f.readline())
    assert header["format"] == "repro-drag-log"
    assert main(["report", log, "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "=== Drag report ===" in out


def test_report_nested_grouping(program_file, tmp_path, capsys):
    log = str(tmp_path / "run.draglog")
    main(["profile", program_file, "--main", "Main", "--interval", "4096", "--log", log])
    capsys.readouterr()
    assert main(["report", log, "--nested"]) == 0
    assert "nested allocation sites" in capsys.readouterr().out


def test_report_bad_log(tmp_path, capsys):
    path = tmp_path / "bad.log"
    path.write_text("not a log\n")
    assert main(["report", str(path)]) == 2


def test_optimize_writes_revised_source(program_file, tmp_path, capsys):
    out_path = str(tmp_path / "revised.mj")
    code = main(
        ["optimize", program_file, "--main", "Main", "--interval", "4096",
         "-o", out_path]
    )
    assert code == 0
    err = capsys.readouterr().err
    assert "transformation(s) applied" in err
    revised = open(out_path).read()
    # the never-used 5000-char buffer allocation is gone
    assert "new char[5000]" not in revised
    assert "class Main" in revised


def test_optimize_dry_run_plans_without_writing(program_file, tmp_path, capsys):
    out_path = tmp_path / "revised.mj"
    code = main(
        ["optimize", program_file, "--main", "Main", "--interval", "4096",
         "--dry-run", "-o", str(out_path)]
    )
    assert code == 0
    captured = capsys.readouterr()
    # The plan goes to stdout: numbered patches with strategy + rationale.
    assert "dead-code-removal" in captured.out
    assert "1." in captured.out
    assert "planned (dry run; nothing applied)" in captured.err
    # Nothing is applied or written.
    assert not out_path.exists()


def test_optimize_diff_prints_unified_diff(program_file, capsys):
    code = main(
        ["optimize", program_file, "--main", "Main", "--interval", "4096",
         "--diff"]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "--- " in captured.out and "+++ " in captured.out
    assert "@@" in captured.out
    # The removed never-used buffer shows as a deletion.
    assert any(
        line.startswith("-") and "new char[5000]" in line
        for line in captured.out.splitlines()
    )
    # With --diff the revised source itself is not dumped to stdout.
    assert "class Main {" not in [l for l in captured.out.splitlines() if not l[:1] in "-+"]


def test_optimize_verified_run_reports_drag_delta(program_file, capsys):
    code = main(
        ["optimize", program_file, "--main", "Main", "--interval", "4096",
         "--verify"]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "verified: drag" in captured.err
    assert "rolled back" in captured.err
    assert "transformation(s) applied" in captured.err


def test_optimize_no_verify_skips_differential_run(program_file, capsys):
    code = main(
        ["optimize", program_file, "--main", "Main", "--interval", "4096",
         "--no-verify"]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "verified" not in captured.err
    assert "transformation(s) applied" in captured.err


def test_optimize_max_cycles_runs_fixpoint(program_file, capsys):
    code = main(
        ["optimize", program_file, "--main", "Main", "--interval", "4096",
         "--max-cycles", "3"]
    )
    assert code == 0
    err = capsys.readouterr().err
    assert "--- cycle 1 ---" in err


def test_disasm_single_class(program_file, capsys):
    assert main(["disasm", program_file, "--class", "Main"]) == 0
    out = capsys.readouterr().out
    assert "Main.main" in out
    assert "NEWARRAY" in out


def test_disasm_unknown_class(program_file, capsys):
    assert main(["disasm", program_file, "--class", "Ghost"]) == 2


def test_disasm_whole_program(program_file, capsys):
    assert main(["disasm", program_file]) == 0
    out = capsys.readouterr().out
    assert "class Vector" in out  # library included


def test_module_entry_point():
    import subprocess, sys

    result = subprocess.run(
        [sys.executable, "-m", "repro", "--help"], capture_output=True, text=True
    )
    assert result.returncode == 0
    assert "profile" in result.stdout


def test_profile_stream_sink_to_v2_then_report_and_watch(program_file, tmp_path, capsys):
    """The acceptance pipeline: profile --sink stream --log run.dlog2,
    then report and watch --once on the same file."""
    log = str(tmp_path / "run.dlog2")
    assert main(
        ["profile", program_file, "--main", "Main", "--interval", "4096",
         "--sink", "stream", "--log", log]
    ) == 0
    err = capsys.readouterr().err
    assert "streamed" in err and "run.dlog2" in err
    with open(log, "rb") as f:
        assert f.read(4) == b"RDL2"
    assert main(["report", log, "--top", "5"]) == 0
    assert "=== Drag report ===" in capsys.readouterr().out
    assert main(["watch", log, "--once"]) == 0
    out = capsys.readouterr().out
    assert "repro watch" in out and "(finished)" in out


def test_profile_stream_sink_v1_format(program_file, tmp_path, capsys):
    log = str(tmp_path / "run.draglog")
    assert main(
        ["profile", program_file, "--main", "Main", "--interval", "4096",
         "--sink", "stream", "--log", log]
    ) == 0
    capsys.readouterr()
    with open(log) as f:
        header = json.loads(f.readline())
    assert header["format"] == "repro-drag-log" and header["version"] == 1
    assert main(["report", log]) == 0


def test_profile_stream_requires_log(program_file, capsys):
    assert main(
        ["profile", program_file, "--main", "Main", "--sink", "stream"]
    ) == 2
    assert "requires --log" in capsys.readouterr().err


def test_stream_and_buffer_logs_agree(program_file, tmp_path, capsys):
    """Same program, same interval: the streamed log holds exactly the
    records the buffered writer produces."""
    from repro.core.logfile import read_log

    buffered = str(tmp_path / "buffered.draglog")
    streamed = str(tmp_path / "streamed.dlog2")
    main(["profile", program_file, "--main", "Main", "--interval", "4096",
          "--log", buffered])
    main(["profile", program_file, "--main", "Main", "--interval", "4096",
          "--sink", "stream", "--log", streamed])
    capsys.readouterr()
    a, b = read_log(buffered), read_log(streamed)
    assert a.end_time == b.end_time
    assert [r.to_dict() for r in a.records] == [r.to_dict() for r in b.records]


def test_watch_metrics_json(program_file, tmp_path, capsys):
    log = str(tmp_path / "run.dlog2")
    metrics = str(tmp_path / "metrics.json")
    main(["profile", program_file, "--main", "Main", "--interval", "4096",
          "--sink", "stream", "--log", log])
    capsys.readouterr()
    assert main(["watch", log, "--once", "--metrics-json", metrics]) == 0
    capsys.readouterr()
    with open(metrics) as f:
        snapshot = json.load(f)
    assert snapshot["finished"] is True
    assert snapshot["records_seen"] > 0
    assert snapshot["top_sites"]


def test_watch_missing_log(tmp_path, capsys):
    assert main(["watch", str(tmp_path / "ghost.dlog2"), "--once"]) == 2
    assert "error:" in capsys.readouterr().err


def test_report_lenient_on_truncated_log(program_file, tmp_path, capsys):
    log = str(tmp_path / "run.draglog")
    main(["profile", program_file, "--main", "Main", "--interval", "4096",
          "--log", log])
    capsys.readouterr()
    with open(log) as f:
        text = f.read()
    with open(log, "w") as f:
        f.write(text[: len(text) - 20])  # crash mid-record
    assert main(["report", log]) == 2  # strict by default
    capsys.readouterr()
    assert main(["report", log, "--lenient"]) == 0
    assert "=== Drag report ===" in capsys.readouterr().out


def test_chart_from_v2_log(program_file, tmp_path, capsys):
    log = str(tmp_path / "run.dlog2")
    main(["profile", program_file, "--main", "Main", "--interval", "4096",
          "--sink", "stream", "--log", log])
    capsys.readouterr()
    assert main(["chart", log, "--width", "50", "--height", "10"]) == 0
    assert "MB allocated" in capsys.readouterr().out


def test_chart_from_log(program_file, tmp_path, capsys):
    log = str(tmp_path / "run.draglog")
    main(["profile", program_file, "--main", "Main", "--interval", "4096", "--log", log])
    capsys.readouterr()
    assert main(["chart", log, "--width", "50", "--height", "10"]) == 0
    out = capsys.readouterr().out
    assert "MB allocated" in out
    assert "legend: # reachable   . in-use" in out
