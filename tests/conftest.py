"""Shared test helpers: compile and run mini-Java snippets."""

import pytest

from repro.mjava.compiler import compile_program
from repro.runtime.engine import create_vm
from repro.runtime.library import link


def compile_app(source, main_class="Main", library_overrides=None):
    return compile_program(
        link(source, library_overrides=library_overrides), main_class=main_class
    )


def run_source(source, args=None, main_class="Main", max_heap=None, **interp_kwargs):
    """Compile + run; returns (ProgramResult, Interpreter).

    Goes through the engine facade, so REPRO_ENGINE=compiled runs the
    whole suite under the closure-compiled dispatcher.
    """
    program = compile_app(source, main_class)
    interp = create_vm(program, max_heap=max_heap, **interp_kwargs)
    result = interp.run(args or [])
    return result, interp


def run_main_body(body, args=None, helpers="", **kwargs):
    """Wrap statements in a main method and run them."""
    source = (
        "class Main { public static void main(String[] args) { "
        + body
        + " } "
        + helpers
        + " }"
    )
    return run_source(source, args, **kwargs)


@pytest.fixture
def run():
    return run_source


@pytest.fixture
def run_body():
    return run_main_body
