"""Dead-code removal and lazy allocation transformations."""

import pytest

from repro.errors import TransformError
from repro.core import profile_program
from repro.mjava.compiler import compile_program
from repro.mjava.pretty import pretty_print
from repro.runtime.interpreter import Interpreter
from repro.runtime.library import link
from repro.transform.dead_code import remove_dead_allocations
from repro.transform.lazy_alloc import lazy_allocate_field


def run_both(original_ast, revised_ast, args=()):
    orig = Interpreter(compile_program(original_ast, main_class="Main")).run(list(args))
    revd = Interpreter(compile_program(revised_ast, main_class="Main")).run(list(args))
    return orig, revd


# -- dead-code removal ------------------------------------------------------------


def test_removes_never_used_local_allocation():
    source = """
    class Main {
        public static void main(String[] args) {
            char[] wasted = new char[1000];
            System.println("work");
        }
    }
    """
    program = link(source)
    revised, removals = remove_dead_allocations(program, "Main")
    assert any(r.kind == "local" for r in removals)
    orig, revd = run_both(program, revised)
    assert orig.stdout == revd.stdout
    assert revd.heap_stats.bytes_allocated < orig.heap_stats.bytes_allocated


def test_removes_never_read_field_allocation():
    """The raytrace pattern: objects only touched by their constructor,
    stored in a field nobody reads."""
    source = """
    class Scene {
        private Object[] cache;
        Scene() { cache = new Object[200]; }
        public void render() { System.println("render"); }
    }
    class Main {
        public static void main(String[] args) {
            Scene s = new Scene();
            s.render();
        }
    }
    """
    program = link(source)
    revised, removals = remove_dead_allocations(program, "Main")
    assert any("cache" in r.where or "Scene" in r.where for r in removals)
    orig, revd = run_both(program, revised)
    assert orig.stdout == revd.stdout
    assert revd.heap_stats.bytes_allocated < orig.heap_stats.bytes_allocated


def test_removes_unread_locale_statics():
    """The jess JDK rewrite: unread Locale constants are dead code."""
    source = """
    class Main {
        public static void main(String[] args) { System.println("go"); }
    }
    """
    program = link(source)
    revised, removals = remove_dead_allocations(program, "Main")
    assert any("Locale" in r.where for r in removals)
    orig, revd = run_both(program, revised)
    assert orig.stdout == revd.stdout
    # all 12 Locale objects (and their display data) no longer allocated:
    # 12 x (instance + char[64] display data) is well over 1.5 KB
    assert orig.heap_stats.bytes_allocated - revd.heap_stats.bytes_allocated > 1500


def test_keeps_allocation_with_impure_ctor():
    source = """
    class Loud {
        Loud() { System.println("side effect!"); }
    }
    class Main {
        public static void main(String[] args) {
            Loud wasted = new Loud();
            System.println("done");
        }
    }
    """
    program = link(source)
    revised, removals = remove_dead_allocations(program, "Main")
    orig, revd = run_both(program, revised)
    assert orig.stdout == revd.stdout == ["side effect!", "done"]


def test_keeps_allocation_when_oom_is_handled():
    """§5.5: if the program can catch OutOfMemoryError, removing an
    allocation changes observable behaviour."""
    source = """
    class Main {
        public static void main(String[] args) {
            try {
                char[] wasted = new char[1000];
                System.println("ok");
            } catch (OutOfMemoryError e) {
                System.println("oom");
            }
        }
    }
    """
    program = link(source)
    revised, removals = remove_dead_allocations(program, "Main")
    assert not any(r.kind == "local" and "char" in str(r.what) for r in removals)


def test_used_field_is_kept():
    source = """
    class Holder {
        Object thing;
        Holder() { thing = new Object(); }
        int probe() { return thing.hashCode(); }
    }
    class Main {
        public static void main(String[] args) {
            int h = new Holder().probe();
            System.println("ok");
        }
    }
    """
    program = link(source)
    revised, removals = remove_dead_allocations(program, "Main")
    orig, revd = run_both(program, revised)
    assert orig.stdout == revd.stdout == ["ok"]


def test_indirectly_unused_chain_removed():
    """§5.1 javac example: field only copied into unused variables."""
    source = """
    class Unit {
        private Object banner;
        private Object copy;
        Unit() { banner = new Object(); }
        void snapshot() { copy = banner; }
        void work() { System.println("w"); }
    }
    class Main {
        public static void main(String[] args) {
            Unit u = new Unit();
            u.snapshot();
            u.work();
        }
    }
    """
    program = link(source)
    revised, removals = remove_dead_allocations(program, "Main")
    orig, revd = run_both(program, revised)
    assert orig.stdout == revd.stdout
    assert revd.heap_stats.objects_allocated < orig.heap_stats.objects_allocated


# -- lazy allocation -----------------------------------------------------------------


JACK_STYLE = """
class Parser {
    Vector tokens;
    HashTable table1;
    HashTable table2;
    int mode;
    Parser(int mode) {
        this.mode = mode;
        tokens = new Vector(400);
        table1 = new HashTable(200);
        table2 = new HashTable(200);
    }
    public int parse() {
        if (mode > 0) {
            tokens.add("tok");
            return tokens.size();
        }
        return 0;
    }
}
class Main {
    public static void main(String[] args) {
        int total = 0;
        for (int i = 0; i < 20; i = i + 1) {
            int m = 0;
            if (i == 10) { m = 1; }
            Parser p = new Parser(m);
            total = total + p.parse();
        }
        System.printInt(total);
    }
}
"""


def test_lazy_allocation_preserves_output_and_saves_space():
    program = link(JACK_STYLE)
    revised = lazy_allocate_field(program, "Parser", "tokens", "Main")
    revised = lazy_allocate_field(revised, "Parser", "table1", "Main")
    revised = lazy_allocate_field(revised, "Parser", "table2", "Main")
    orig, revd = run_both(program, revised)
    assert orig.stdout == revd.stdout
    # 20 parsers, only one ever parses: 19 never allocate their collections
    assert revd.heap_stats.bytes_allocated < orig.heap_stats.bytes_allocated * 0.6


def test_lazy_allocation_source_shape():
    program = link(JACK_STYLE)
    revised = lazy_allocate_field(program, "Parser", "tokens", "Main")
    printed = pretty_print(revised)
    assert "lazyInit_tokens" in printed
    assert "if ((tokens == null))" in printed


def test_lazy_allocation_rejects_nonconstant_args():
    source = """
    class Box {
        Vector v;
        Box(int n) { v = new Vector(n); }
        int size() { return v.size(); }
    }
    class Main {
        public static void main(String[] args) { Box b = new Box(3); b.size(); }
    }
    """
    with pytest.raises(TransformError):
        lazy_allocate_field(link(source), "Box", "v", "Main")


def test_lazy_allocation_rejects_impure_ctor():
    source = """
    class Chatty { Chatty() { System.println("hi"); } }
    class Box {
        Chatty c;
        Box() { c = new Chatty(); }
        int probe() { return c.hashCode(); }
    }
    class Main {
        public static void main(String[] args) { Box b = new Box(); b.probe(); }
    }
    """
    with pytest.raises(TransformError):
        lazy_allocate_field(link(source), "Box", "c", "Main")


def test_lazy_allocation_rejects_multiple_inits():
    source = """
    class Box {
        Vector v;
        Box() { v = new Vector(4); }
        void reset() { v = new Vector(4); }
    }
    class Main {
        public static void main(String[] args) { Box b = new Box(); b.reset(); }
    }
    """
    with pytest.raises(TransformError):
        lazy_allocate_field(link(source), "Box", "v", "Main")


def test_lazy_allocation_rejects_oom_handler():
    source = """
    class Box {
        Vector v;
        Box() { v = new Vector(4); }
        int size() { return v.size(); }
    }
    class Main {
        public static void main(String[] args) {
            try { Box b = new Box(); System.printInt(b.size()); }
            catch (OutOfMemoryError e) { }
        }
    }
    """
    with pytest.raises(TransformError):
        lazy_allocate_field(link(source), "Box", "v", "Main")


def test_lazy_allocation_write_after_init_still_works():
    source = """
    class Box {
        Vector v;
        Box() { v = new Vector(4); }
        public void use() { v.add("x"); System.printInt(v.size()); }
    }
    class Main {
        public static void main(String[] args) {
            Box b = new Box();
            b.use();
            b.use();
        }
    }
    """
    program = link(source)
    revised = lazy_allocate_field(program, "Box", "v", "Main")
    orig, revd = run_both(program, revised)
    assert orig.stdout == revd.stdout == ["1", "2"]
