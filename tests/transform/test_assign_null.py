"""Assign-null transformation: liveness-validated local nulling and the
logical-size array-slot clearing."""

import pytest

from repro.errors import TransformError
from repro.core import profile_program
from repro.mjava.compiler import compile_program
from repro.mjava.parser import parse_program
from repro.mjava.pretty import pretty_print
from repro.runtime.interpreter import Interpreter
from repro.runtime.library import link
from repro.transform.assign_null import assign_null_to_local, clear_array_slot_on_remove

JURU_STYLE = """
class Main {
    public static void main(String[] args) {
        for (int i = 0; i < 10; i = i + 1) { cycle(); }
    }
    static void cycle() {
        char[] buffer = new char[5000];
        fill(buffer);
        crunch();
    }
    static void fill(char[] buffer) {
        for (int i = 0; i < buffer.length; i = i + 1) { buffer[i] = 'x'; }
    }
    static void crunch() {
        for (int i = 0; i < 40; i = i + 1) { char[] tmp = new char[100]; }
    }
}
"""


def profiles_of(original_ast, revised_ast, args=(), interval=4 * 1024):
    orig = profile_program(
        compile_program(original_ast, main_class="Main"), list(args), interval_bytes=interval
    )
    revd = profile_program(
        compile_program(revised_ast, main_class="Main"), list(args), interval_bytes=interval
    )
    return orig, revd


def test_assign_null_reduces_drag_and_preserves_output():
    program = link(JURU_STYLE)
    # 'buffer' is last used at the fill() call on line 8.
    revised = assign_null_to_local(program, "Main", "cycle", "buffer", after_line=8)
    orig, revd = profiles_of(program, revised)
    assert orig.run_result.stdout == revd.run_result.stdout
    orig_drag = sum(r.drag for r in orig.records)
    revd_drag = sum(r.drag for r in revd.records)
    assert revd_drag < orig_drag * 0.7


def test_assign_null_inserts_statement_in_source():
    program = link(JURU_STYLE)
    revised = assign_null_to_local(program, "Main", "cycle", "buffer", after_line=8)
    printed = pretty_print(revised)
    assert "buffer = null;" in printed
    # and the revised source still parses and compiles
    compile_program(link(pretty_print(parse_program(printed)))) if False else None
    compile_program(revised, main_class="Main")


def test_assign_null_rejected_when_variable_still_live():
    source = """
    class Main {
        public static void main(String[] args) {
            char[] buffer = new char[100];
            use(buffer);
            use(buffer);
        }
        static void use(char[] b) { b[0] = 'x'; }
    }
    """
    program = link(source)
    # inserting after the FIRST use (line 5) is unsafe
    with pytest.raises(TransformError):
        assign_null_to_local(program, "Main", "main", "buffer", after_line=5)


def test_assign_null_rejected_for_live_loop_variable():
    source = """
    class Main {
        public static void main(String[] args) {
            char[] keep = new char[10];
            for (int i = 0; i < 5; i = i + 1) {
                keep[0] = 'x';
            }
        }
    }
    """
    program = link(source)
    with pytest.raises(TransformError):
        # 'keep' is used on every iteration; nulling inside the loop at
        # line 6 must be rejected (the loop re-reads it).
        assign_null_to_local(program, "Main", "main", "keep", after_line=6)


def test_assign_null_rejected_for_non_reference():
    program = link("class Main { public static void main(String[] args) { int x = 1; } }")
    with pytest.raises(TransformError):
        assign_null_to_local(program, "Main", "main", "x", after_line=3)


def test_assign_null_unknown_variable():
    program = link("class Main { public static void main(String[] args) { } }")
    with pytest.raises(TransformError):
        assign_null_to_local(program, "Main", "main", "ghost", after_line=1)


# -- array slot clearing ---------------------------------------------------------


VECTOR_CLIENT = """
class Main {
    static Vector stack = new Vector(8);
    public static void main(String[] args) {
        for (int round = 0; round < 12; round = round + 1) {
            stack.add(new char[2000]);
            Object popped = stack.removeLast();
            popped = null;
            pad();
        }
    }
    static void pad() {
        for (int i = 0; i < 30; i = i + 1) { char[] junk = new char[64]; }
    }
}
"""


def test_clear_array_slot_fixes_vector_drag():
    """The jess case: Vector.removeLast leaves a dangling reference; the
    JDK rewrite clears it and the removed payloads stop dragging."""
    program = link(VECTOR_CLIENT)
    revised = clear_array_slot_on_remove(program, "Vector")
    orig, revd = profiles_of(program, revised)
    assert orig.run_result.stdout == revd.run_result.stdout

    def payload_drag(profile):
        return sum(r.drag for r in profile.records if r.type_name == "char[]" and r.size > 3000)

    assert payload_drag(revd) < payload_drag(orig) * 0.6


def test_clear_array_slot_output_identical_under_reuse():
    """removeLast's return value must be preserved by the temp rewrite."""
    source = """
    class Main {
        public static void main(String[] args) {
            Vector v = new Vector(4);
            v.add("a");
            v.add("b");
            System.println((String) v.removeLast());
            System.println((String) v.removeLast());
            System.printInt(v.size());
        }
    }
    """
    program = link(source)
    revised = clear_array_slot_on_remove(program, "Vector")
    interp = Interpreter(compile_program(revised, main_class="Main"))
    result = interp.run([])
    assert result.stdout == ["b", "a", "0"]


def test_clear_array_slot_requires_verified_pair():
    source = """
    class Raw {
        Object[] data;
        Raw() { data = new Object[4]; }
        Object get(int i) { return data[i]; }
    }
    class Main { public static void main(String[] args) { Raw r = new Raw(); } }
    """
    program = link(source)
    with pytest.raises(TransformError):
        clear_array_slot_on_remove(program, "Raw")


def test_clear_array_slot_source_shows_null_store():
    program = link(VECTOR_CLIENT)
    revised = clear_array_slot_on_remove(program, "Vector")
    printed = pretty_print(revised)
    assert "data[count] = null;" in printed
    assert "removedElement_" in printed
