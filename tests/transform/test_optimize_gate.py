"""The optimize gate (CI step): on db and euler the verified pipeline
must (1) apply at least the transformation set the legacy advisor
applies — byte-identical revised source, since every advisor patch
passes differential verification — (2) verify every applied patch, and
(3) strictly decrease total drag."""

import pytest

from repro.benchmarks.registry import get_benchmark
from repro.mjava.pretty import pretty_print
from repro.runtime.library import link
from repro.transform import OptimizationPipeline
from repro.transform.advisor import Advisor


def run_both(name):
    bench = get_benchmark(name)
    program = link(bench.original)
    advisor = Advisor(
        program, bench.main_class, bench.primary_args,
        interval_bytes=bench.interval_bytes,
    )
    advisor_revised, advisor_report = advisor.run()
    pipeline = OptimizationPipeline(
        link(bench.original), bench.main_class, bench.primary_args,
        interval_bytes=bench.interval_bytes, verify=True,
    )
    result = pipeline.run()
    return advisor_revised, advisor_report, result


@pytest.mark.parametrize("name", ["db", "euler"])
def test_verified_pipeline_matches_advisor_and_decreases_drag(name):
    advisor_revised, advisor_report, result = run_both(name)

    # (1) Same transformation set: every advisor patch survives
    # verification, so the revised sources are byte-identical.
    assert pretty_print(result.revised) == pretty_print(advisor_revised)
    advisor_applied = sorted(a.transformation for a in advisor_report.applied())
    pipeline_applied = sorted(
        o.patch.strategy for o in result.applied()
    )
    assert pipeline_applied == advisor_applied
    assert not result.rolled_back()

    # (2) Every applied patch passed the differential check.
    for outcome in result.applied():
        assert outcome.verification is not None
        assert outcome.verification.ok, outcome.detail
        assert outcome.verification.stdout_ok
        assert outcome.verification.drag_ok

    # (3) Total drag strictly decreases end to end.
    assert result.drag_after is not None
    assert result.drag_after < result.drag_before


@pytest.mark.parametrize("name", ["db", "euler"])
def test_pipeline_report_subsumes_advisor_report(name):
    _, advisor_report, result = run_both(name)
    # The cycle's advisor projection reports the same action set with
    # the same details (order and text), minus the applied flag
    # differences verification could introduce (none on these inputs).
    projected = result.cycles[0].to_advisor_report()
    assert projected.summary() == advisor_report.summary()
