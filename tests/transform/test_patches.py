"""Per-strategy planner unit tests: each §3.3 strategy, run on a
fixture that exercises its lifetime pattern, must emit a structured
Patch with the right kind, span, params, rationale, and originating
lint diagnostics — the plan half of the plan/apply split."""

from repro.core.patterns import LifetimePattern
from repro.mjava.pretty import pretty_print
from repro.runtime.library import link
from repro.transform import OptimizationPipeline, apply_patches
from repro.transform.patch import Patch, PatchOutcome, PlannedSkip, describe_plan

INTERVAL = 4 * 1024

# Mixed workload: a sometimes-used ctor collection plus never-used
# buffers (same fixture the advisor integration tests use).
MIXED = """
class Report {
    Vector lines;
    int used;
    Report(int used) {
        this.used = used;
        lines = new Vector(500);
    }
    int flush() {
        if (used > 0) { lines.add("line"); return lines.size(); }
        return 0;
    }
}
class Main {
    public static void main(String[] args) {
        int total = 0;
        for (int i = 0; i < 30; i = i + 1) {
            int flag = 0;
            if (i == 7) { flag = 1; }
            Report r = new Report(flag);
            total = total + r.flush();
            pad();
        }
        char[] wasted = new char[4000];
        System.printInt(total);
    }
    static void pad() {
        for (int k = 0; k < 20; k = k + 1) { char[] junk = new char[64]; }
    }
}
"""

# A large local buffer dead after its fill — the §3.3.1 assign-null case.
BUFFER = """
class Main {
    public static void main(String[] args) {
        for (int i = 0; i < 10; i = i + 1) { cycle(); }
    }
    static void cycle() {
        char[] buffer = new char[5000];
        fill(buffer);
        crunch();
    }
    static void fill(char[] b) {
        for (int i = 0; i < b.length; i = i + 1) { b[i] = 'x'; }
    }
    static void crunch() {
        for (int i = 0; i < 40; i = i + 1) { char[] tmp = new char[100]; }
    }
}
"""

# A ctor-assigned collection used on only ~1 in 8 iterations: enough
# uses to dodge ALL_NEVER_USED (>= 0.95) but mostly never used
# (>= 0.50) — the §3.3.3 lazy-allocation case.
LAZY = """
class NfaState {
    Vector epsilon;
    int hot;
    NfaState(int hot) {
        this.hot = hot;
        epsilon = new Vector(300);
    }
    int touch() {
        if (hot > 0) { epsilon.add("e"); return epsilon.size(); }
        return 0;
    }
}
class Main {
    public static void main(String[] args) {
        int total = 0;
        for (int i = 0; i < 40; i = i + 1) {
            int hot = 0;
            if (i % 8 == 3) { hot = 1; }
            NfaState s = new NfaState(hot);
            total = total + s.touch();
            pad();
        }
        System.printInt(total);
    }
    static void pad() {
        for (int k = 0; k < 20; k = k + 1) { char[] junk = new char[64]; }
    }
}
"""


def plan(source):
    program = link(source)
    pipeline = OptimizationPipeline(program, "Main", interval_bytes=INTERVAL)
    return program, pipeline.plan()


def by_kind(cycle, kind):
    return [p for p in cycle.patches if p.kind == kind]


def test_dead_code_planner_emits_program_wide_patch():
    _, cycle = plan(MIXED)
    patches = by_kind(cycle, "remove-dead-allocations")
    assert len(patches) == 1
    patch = patches[0]
    assert patch.strategy == "dead-code-removal"
    assert patch.priority == 0  # scheduled before every per-site patch
    assert patch.pattern is LifetimePattern.ALL_NEVER_USED
    assert patch.drag > 0
    # Self-contained params: main class, the proven candidate set, and
    # the never-used sites it expands to in advisor-style reports.
    assert patch.params["main_class"] == "Main"
    assert patch.params["candidates"] is not None
    assert any("Main." in str(site) for site in patch.params["sites"])
    # Span anchors the top never-used site.
    assert patch.span is not None and patch.span.line > 0
    assert "never used" in patch.rationale
    # Every originating diagnostic is a DRAG001 ref; the never-used
    # local must be among them.
    assert patch.diagnostics
    assert all(ref.startswith("DRAG001@") for ref in patch.diagnostics)
    assert any("junk" in ref or "wasted" in ref for ref in patch.diagnostics)


def test_assign_null_planner_targets_anchor_local():
    _, cycle = plan(BUFFER)
    patches = by_kind(cycle, "assign-null-local")
    assert len(patches) == 1
    patch = patches[0]
    assert patch.strategy == "assign-null"
    assert patch.pattern is LifetimePattern.LARGE_DRAG
    assert patch.params["class_name"] == "Main"
    assert patch.params["method_name"] == "cycle"
    assert patch.params["var_name"] == "buffer"
    assert patch.params["validate"] is True
    assert patch.params["lines"], "planner must carry liveness-safe lines"
    assert patch.span is not None and patch.span.class_name == "Main"
    assert "liveness" in patch.rationale
    assert patch.replacement == "buffer = null;"


def test_lazy_planner_requires_drag003_and_names_field():
    _, cycle = plan(LAZY)
    patches = by_kind(cycle, "lazy-alloc-field")
    assert len(patches) == 1
    patch = patches[0]
    assert patch.strategy == "lazy-allocation"
    assert patch.pattern is LifetimePattern.MOSTLY_NEVER_USED
    assert patch.params == {
        "class_name": "NfaState",
        "field_name": "epsilon",
        "main_class": "Main",
    }
    # The span and diagnostics come from the DRAG003 finding that
    # proves the §3.3.3 preconditions.
    assert patch.diagnostics == ("DRAG003@NfaState.<init>:7(field,NfaState,epsilon)",)
    assert patch.span.label == "NfaState.<init>:7"
    assert "lazyInit_epsilon" in patch.replacement


def test_planned_patches_apply_purely():
    """apply_patches builds a new program and leaves the input AST
    untouched — the pure-applier contract."""
    program, cycle = plan(MIXED)
    before = pretty_print(program)
    revised = apply_patches(program, cycle.patches)
    assert revised is not program
    assert pretty_print(program) == before
    assert pretty_print(revised) != before


def test_patch_describe_and_dict_round_trip():
    _, cycle = plan(BUFFER)
    patch = by_kind(cycle, "assign-null-local")[0]
    text = patch.describe()
    assert "assign-null" in text and "buffer = null;" in text
    data = patch.to_dict()
    assert data["kind"] == "assign-null-local"
    assert data["span"] == patch.span.label
    assert data["diagnostics"] == list(patch.diagnostics)
    assert data["pattern"] == "LARGE_DRAG"


def test_describe_plan_renders_patches_and_skips():
    span_text = describe_plan(
        [
            PatchOutcome(Patch("s", "k", {}, site="A.m:1", drag=10)),
            PlannedSkip("B.n:2", None, "lazy-allocation", "why not"),
        ]
    )
    assert "1. s [k] @ A.m:1" in span_text
    assert "-  skip lazy-allocation @ B.n:2: why not" in span_text
    assert describe_plan([]) == "(no patches planned)"
