"""The profile-driven advisor: end-to-end automatic drag reduction."""

from repro.core import profile_program
from repro.mjava.compiler import compile_program
from repro.runtime.library import link
from repro.transform.advisor import optimize


def drags(program_ast, args=(), interval=4 * 1024):
    profile = profile_program(
        compile_program(program_ast, main_class="Main"), list(args), interval_bytes=interval
    )
    return profile


MIXED = """
class Report {
    Vector lines;
    int used;
    Report(int used) {
        this.used = used;
        lines = new Vector(500);
    }
    int flush() {
        if (used > 0) { lines.add("line"); return lines.size(); }
        return 0;
    }
}
class Main {
    public static void main(String[] args) {
        int total = 0;
        for (int i = 0; i < 30; i = i + 1) {
            int flag = 0;
            if (i == 7) { flag = 1; }
            Report r = new Report(flag);
            total = total + r.flush();
            pad();
        }
        char[] wasted = new char[4000];
        System.printInt(total);
    }
    static void pad() {
        for (int k = 0; k < 20; k = k + 1) { char[] junk = new char[64]; }
    }
}
"""


def test_advisor_applies_transformations_and_saves_space():
    program = link(MIXED)
    revised, report = optimize(program, "Main", interval_bytes=4 * 1024)
    applied = {a.transformation for a in report.applied()}
    assert "dead-code-removal" in applied or "lazy-allocation" in applied

    orig = drags(program)
    revd = drags(revised)
    assert orig.run_result.stdout == revd.run_result.stdout
    orig_reach = sum(r.drag for r in orig.records)
    revd_reach = sum(r.drag for r in revd.records)
    assert revd_reach < orig_reach


def test_advisor_lazy_allocates_ctor_collections():
    program = link(MIXED)
    revised, report = optimize(program, "Main", interval_bytes=4 * 1024)
    lazy = [a for a in report.applied() if a.transformation == "lazy-allocation"]
    if lazy:  # pattern thresholds may route Vector's array to lazy or dead-code
        assert any("Report" in a.detail for a in lazy)
    summary = report.summary()
    assert "APPLIED" in summary


def test_advisor_nulls_dead_local_buffers():
    source = """
    class Main {
        public static void main(String[] args) {
            for (int i = 0; i < 10; i = i + 1) { cycle(); }
        }
        static void cycle() {
            char[] buffer = new char[5000];
            fill(buffer);
            crunch();
        }
        static void fill(char[] b) {
            for (int i = 0; i < b.length; i = i + 1) { b[i] = 'x'; }
        }
        static void crunch() {
            for (int i = 0; i < 40; i = i + 1) { char[] tmp = new char[100]; }
        }
    }
    """
    program = link(source)
    revised, report = optimize(program, "Main", interval_bytes=4 * 1024)
    nulls = [a for a in report.applied() if a.transformation == "assign-null"]
    assert nulls, report.summary()
    orig = drags(program)
    revd = drags(revised)
    assert orig.run_result.stdout == revd.run_result.stdout
    big = lambda p: sum(r.drag for r in p.records if r.size > 4000)
    assert big(revd) < big(orig) * 0.7


def test_advisor_leaves_db_style_repository_alone():
    """Pattern 4 (high variance): no transformation applies."""
    source = """
    class Main {
        static Object[] repo = new Object[50];
        public static void main(String[] args) {
            for (int i = 0; i < 50; i = i + 1) { repo[i] = new char[600]; }
            Random r = new Random(3);
            for (int q = 0; q < 40; q = q + 1) {
                Object hit = repo[r.nextInt(50)];
                hit.hashCode();
                pad();
            }
        }
        static void pad() {
            for (int k = 0; k < 10; k = k + 1) { char[] junk = new char[64]; }
        }
    }
    """
    program = link(source)
    revised, report = optimize(program, "Main", interval_bytes=2 * 1024)
    orig = drags(program, interval=2 * 1024)
    revd = drags(revised, interval=2 * 1024)
    assert orig.run_result.stdout == revd.run_result.stdout
    # Repository entries must all still be allocated and survive to the
    # end in the revised run (drag *values* shrink in any revised run
    # because removing other allocations compresses the byte-time axis).
    def surviving_repo_entries(p):
        return sum(
            1
            for r in p.records
            if r.type_name == "char[]" and r.size > 1100 and r.survived_to_end
        )

    assert surviving_repo_entries(revd) == surviving_repo_entries(orig) == 50
