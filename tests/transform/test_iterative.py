"""Iterative profile→rewrite cycles (§3.2): a second profiling pass can
reveal opportunities the first pass's noise hid."""

from repro.core import profile_program
from repro.mjava.compiler import compile_program
from repro.runtime.library import link
from repro.transform import optimize_iteratively

# The never-used 'forgotten' buffer dominates round 1; once removed the
# dragging 'buffer' local becomes the top site for round 2.
SOURCE = """
class Main {
    public static void main(String[] args) {
        char[] forgotten = new char[30000];
        for (int round = 0; round < 12; round = round + 1) {
            work(round);
        }
        System.println("done");
    }
    static void work(int round) {
        char[] buffer = new char[4000];
        for (int i = 0; i < buffer.length; i = i + 16) {
            buffer[i] = (char) ('a' + (round + i) % 26);
        }
        churn();
    }
    static void churn() {
        for (int i = 0; i < 30; i = i + 1) { char[] tmp = new char[100]; }
    }
}
"""


def total_drag(program_ast):
    profile = profile_program(
        compile_program(program_ast, main_class="Main"), [], interval_bytes=4096
    )
    return sum(r.drag for r in profile.records), profile.run_result.stdout


def test_iteration_converges_and_preserves_output():
    program = link(SOURCE)
    revised, reports = optimize_iteratively(program, "Main", interval_bytes=4096)
    assert 1 <= len(reports) <= 4
    # the final cycle applied nothing (fixpoint) unless the cap hit
    if len(reports) < 4:
        assert not reports[-1].applied()
    before, out_before = total_drag(link(SOURCE))
    after, out_after = total_drag(revised)
    assert out_before == out_after
    assert after < before


def test_multiple_cycles_apply_different_transformations():
    program = link(SOURCE)
    revised, reports = optimize_iteratively(program, "Main", interval_bytes=4096)
    applied = [a.transformation for r in reports for a in r.applied()]
    assert "dead-code-removal" in applied
    assert "assign-null" in applied


def test_zero_cycle_program_untouched():
    source = """
    class Main {
        public static void main(String[] args) { System.println("hi"); }
    }
    """
    program = link(source)
    revised, reports = optimize_iteratively(program, "Main", interval_bytes=4096)
    assert len(reports) >= 1
