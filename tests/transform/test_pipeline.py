"""End-to-end pipeline tests: verified application, dry-run planning,
and the differential-rollback safety net (an unsound patch must be
detected, rolled back, and surfaced — not silently shipped)."""

from repro.mjava.pretty import pretty_print
from repro.runtime.library import link
from repro.transform import OptimizationPipeline, run_reference
from repro.transform.patch import Patch

INTERVAL = 4 * 1024

MIXED = """
class Report {
    Vector lines;
    int used;
    Report(int used) {
        this.used = used;
        lines = new Vector(500);
    }
    int flush() {
        if (used > 0) { lines.add("line"); return lines.size(); }
        return 0;
    }
}
class Main {
    public static void main(String[] args) {
        int total = 0;
        for (int i = 0; i < 30; i = i + 1) {
            int flag = 0;
            if (i == 7) { flag = 1; }
            Report r = new Report(flag);
            total = total + r.flush();
            pad();
        }
        char[] wasted = new char[4000];
        System.printInt(total);
    }
    static void pad() {
        for (int k = 0; k < 20; k = k + 1) { char[] junk = new char[64]; }
    }
}
"""

# ``data`` stays live across warm(): nulling it after warm() crashes
# the final read. The rollback test injects exactly that unsound patch.
LIVE = """
class Main {
    public static void main(String[] args) {
        int total = 0;
        for (int i = 0; i < 6; i = i + 1) { total = total + step(); }
        System.printInt(total);
    }
    static int step() {
        char[] data = new char[3000];
        data[0] = 'x';
        warm();
        return data.length;
    }
    static void warm() {
        for (int k = 0; k < 20; k = k + 1) { char[] pad = new char[80]; }
    }
}
"""


def line_of(source, needle):
    for number, text in enumerate(source.splitlines(), 1):
        if needle in text:
            return number
    raise AssertionError(f"{needle!r} not in fixture")


def test_verified_pipeline_applies_and_reduces_drag():
    program = link(MIXED)
    pipeline = OptimizationPipeline(
        program, "Main", interval_bytes=INTERVAL, verify=True
    )
    result = pipeline.run()
    applied = result.applied()
    assert applied, result.cycles[0].describe_plan()
    # Every applied patch carries a passing differential verification.
    for outcome in applied:
        assert outcome.verification is not None
        assert outcome.verification.ok
        assert outcome.verification.stdout_ok
        assert outcome.verification.drag_ok
    assert result.drag_after is not None
    assert result.drag_after < result.drag_before
    # Independent check: the final revision is stdout-identical.
    original = run_reference(program, "Main", [], INTERVAL, None)
    revised = run_reference(result.revised, "Main", [], INTERVAL, None)
    assert revised.stdout == original.stdout
    assert revised.total_drag < original.total_drag


def test_dry_run_plans_without_applying():
    program = link(MIXED)
    pipeline = OptimizationPipeline(program, "Main", interval_bytes=INTERVAL)
    before = pretty_print(program)
    cycle = pipeline.plan()
    assert cycle.patches, cycle.describe_plan()
    assert all(o.status == "planned" for o in cycle.outcomes)
    assert cycle.revised is program
    assert pretty_print(program) == before
    plan_text = cycle.describe_plan()
    assert "1." in plan_text


def test_unsound_patch_is_rolled_back():
    program = link(LIVE)
    unsound = Patch(
        strategy="assign-null",
        kind="assign-null-local",
        params={
            "class_name": "Main",
            "method_name": "step",
            "var_name": "data",
            "lines": (line_of(LIVE, "warm();"),),
            "validate": False,  # skip the §5.1 liveness proof on purpose
        },
        rationale="deliberately unsound: data is read after warm()",
        replacement="data = null;",
    )
    pipeline = OptimizationPipeline(
        program,
        "Main",
        interval_bytes=INTERVAL,
        verify=True,
        extra_patches=[unsound],
    )
    result = pipeline.run()
    # The unsound patch was applied, caught by differential
    # verification, rolled back, and surfaced in the report.
    rolled = result.rolled_back()
    assert len(rolled) == 1
    outcome = rolled[0]
    assert outcome.patch is unsound
    assert outcome.status == "rolled-back"
    assert outcome.verification is not None and not outcome.verification.ok
    assert "rolled back" in outcome.detail
    # Nulling a live reference crashes the revised run (NPE) or changes
    # stdout; either way verification must say why.
    assert ("failed to run" in outcome.verification.detail
            or "stdout" in outcome.verification.detail)
    # The shipped revision excludes the unsound rewrite: it still runs
    # and prints the original output.
    original = run_reference(program, "Main", [], INTERVAL, None)
    revised = run_reference(result.revised, "Main", [], INTERVAL, None)
    assert revised.stdout == original.stdout
    # Sound patches in the same cycle are unaffected by the rollback.
    for outcome in result.applied():
        assert outcome.verification.ok


def test_unverified_pipeline_would_ship_the_unsound_patch():
    """Control for the rollback test: with verify=False the same patch
    lands in the revision — verification is what catches it."""
    program = link(LIVE)
    unsound = Patch(
        strategy="assign-null",
        kind="assign-null-local",
        params={
            "class_name": "Main",
            "method_name": "step",
            "var_name": "data",
            "lines": (line_of(LIVE, "warm();"),),
            "validate": False,
        },
    )
    pipeline = OptimizationPipeline(
        program,
        "Main",
        interval_bytes=INTERVAL,
        verify=False,
        extra_patches=[unsound],
    )
    result = pipeline.run()
    assert any(o.patch is unsound for o in result.applied())
    assert "data = null;" in pretty_print(result.revised)


def test_fixpoint_stops_when_no_patch_applies():
    source = """
    class Main {
        public static void main(String[] args) {
            System.printInt(7);
        }
    }
    """
    program = link(source)
    pipeline = OptimizationPipeline(
        program, "Main", interval_bytes=INTERVAL, verify=True, max_cycles=4
    )
    result = pipeline.run()
    # The loop exits the first time a cycle applies nothing, well
    # before the cycle cap (cycle 1 may still strip never-used library
    # initializers, so the fixpoint lands by cycle 2).
    assert len(result.cycles) < 4
    assert result.cycles[-1].applied_count == 0
    assert all(c.applied_count > 0 for c in result.cycles[:-1])


def test_fixpoint_converges_under_max_cycles():
    program = link(MIXED)
    pipeline = OptimizationPipeline(
        program, "Main", interval_bytes=INTERVAL, verify=True, max_cycles=3
    )
    result = pipeline.run()
    assert 1 <= len(result.cycles) <= 3
    # The loop only stops early at a fixpoint (or at the cycle cap).
    if len(result.cycles) < 3:
        assert result.cycles[-1].applied_count == 0
    # Cycle reports chain: each later cycle starts from the previous
    # revision, and total drag never increases across accepted cycles.
    drags = [c.drag_after for c in result.cycles if c.drag_after is not None]
    assert all(b <= a for a, b in zip(drags, drags[1:]))
