"""Pretty-print / re-parse round-trip tests, including a hypothesis
property test over randomly generated ASTs and the full corpus of
shipped programs (examples/ plus all nine benchmark sources) — the
property ``--diff`` and ``-o`` output depend on."""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks.registry import all_benchmarks
from repro.mjava import ast
from repro.mjava.parser import parse_program
from repro.mjava.pretty import format_expr, pretty_print

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples" / "programs").glob("*.mj")
)

CORPUS = [
    "class A { }",
    "class A extends B { int x; }",
    """
    class Point {
        private int x;
        private int y;
        Point(int x, int y) { this.x = x; this.y = y; }
        public int getX() { return x; }
        public int getY() { return y; }
        public int dist2(Point other) {
            int dx = x - other.getX();
            int dy = y - other.getY();
            return dx * dx + dy * dy;
        }
    }
    """,
    """
    class Loops {
        static int sum(int n) {
            int total = 0;
            for (int i = 0; i < n; i = i + 1) {
                if (i % 2 == 0) { total = total + i; } else { continue; }
            }
            while (total > 100) { total = total - 100; }
            return total;
        }
    }
    """,
    """
    class Exceptions {
        void risky(Object o) {
            try {
                if (o == null) { throw new NullPointerException("null!"); }
                synchronized (o) { this.use(o); }
            } catch (NullPointerException e) {
                this.log(e);
            } catch (Exception e2) {
            }
        }
        void use(Object o) { }
        void log(Object o) { }
    }
    """,
    """
    class Arrays {
        char[] buffer;
        Object[][] grid;
        void fill(int n) {
            buffer = new char[n];
            grid = new Object[n][];
            for (int i = 0; i < n; i = i + 1) { buffer[i] = 'x'; }
            Object first = grid[0][0];
            Vector v = (Vector) first;
            boolean ok = first instanceof Vector;
        }
    }
    """,
    """
    class Casty {
        int f(Object o) {
            int c = (a) + b;
            char ch = (char) 65;
            String s = "esc\\n\\t\\"q\\"";
            return -5 + (-3);
        }
    }
    """,
]


def roundtrip(source):
    program = parse_program(source)
    printed = pretty_print(program)
    reparsed = parse_program(printed)
    return program, printed, reparsed


def test_corpus_roundtrip():
    for source in CORPUS:
        program, printed, reparsed = roundtrip(source)
        assert program == reparsed, printed


def test_pretty_is_stable():
    """pretty(parse(pretty(p))) == pretty(p): printing is a fixpoint."""
    for source in CORPUS:
        program = parse_program(source)
        once = pretty_print(program)
        twice = pretty_print(parse_program(once))
        assert once == twice


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_programs_roundtrip(path):
    program, printed, reparsed = roundtrip(path.read_text())
    assert program == reparsed, printed


@pytest.mark.parametrize("name", sorted(all_benchmarks()))
@pytest.mark.parametrize("which", ["original", "revised"])
def test_benchmark_sources_roundtrip(name, which):
    """parse(pretty(ast)) == ast for every shipped benchmark source,
    both the original and the paper's hand-revised version."""
    source = getattr(all_benchmarks()[name], which)
    program, printed, reparsed = roundtrip(source)
    assert program == reparsed, f"{name}/{which} failed to round-trip"
    assert pretty_print(reparsed) == printed  # printing is a fixpoint too


# --------------------------------------------------------------------------
# Property test: generate random expression ASTs, print, re-parse, compare.
# --------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "foo", "x1", "tmp"])


def _exprs(depth):
    leaf = st.one_of(
        st.integers(min_value=-1000, max_value=1000).map(ast.IntLit),
        st.booleans().map(ast.BoolLit),
        st.just(ast.NullLit()),
        st.just(ast.This()),
        _names.map(ast.Name),
        st.sampled_from(["a", "xy", "with space", "esc\n\t", 'q"q']).map(ast.StringLit),
        st.sampled_from(["a", "\n", "'", "\\"]).map(ast.CharLit),
    )
    if depth <= 0:
        return leaf
    sub = _exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(["+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"]), sub, sub).map(
            lambda t: ast.Binary(t[0], t[1], t[2])
        ),
        st.tuples(st.sampled_from(["!", "-"]), sub).map(lambda t: ast.Unary(t[0], t[1])),
        st.tuples(sub, _names).map(lambda t: ast.FieldAccess(t[0], t[1])),
        st.tuples(sub, sub).map(lambda t: ast.Index(t[0], t[1])),
        st.tuples(sub, _names, st.lists(sub, max_size=2)).map(
            lambda t: ast.Call(t[0], t[1], t[2])
        ),
        st.tuples(_names, st.lists(sub, max_size=2)).map(lambda t: ast.New(t[0], t[1])),
        st.tuples(sub, _names).map(lambda t: ast.InstanceOf(t[0], t[1])),
        st.tuples(_names, sub).map(lambda t: ast.Cast(ast.ClassType(t[0]), t[1])),
        st.tuples(sub).map(lambda t: ast.NewArray(ast.INT, t[0])),
    )


def _normalize(expr):
    """The parser folds Unary('-', IntLit(n)) into IntLit(-n); apply the
    same fold to generated ASTs before comparing."""
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _normalize(expr.operand)
        if isinstance(inner, ast.IntLit):
            return ast.IntLit(-inner.value)
        return ast.Unary(expr.op, inner)
    rebuilt = []
    for name in expr._fields:
        value = getattr(expr, name)
        if isinstance(value, ast.Expr):
            rebuilt.append(_normalize(value))
        elif isinstance(value, list):
            rebuilt.append([_normalize(v) if isinstance(v, ast.Expr) else v for v in value])
        else:
            rebuilt.append(value)
    return type(expr)(*rebuilt)


@settings(max_examples=150, deadline=None)
@given(_exprs(3))
def test_expression_roundtrip_property(expr):
    expr = _normalize(expr)
    source = "class C { void m() { x = " + format_expr(expr) + "; } }"
    program = parse_program(source)
    parsed = program.classes[0].methods[0].body.stmts[0].value
    assert parsed == expr
