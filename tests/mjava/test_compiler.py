"""Compiler: type checking, bytecode shape, allocation sites, errors."""

import pytest

from repro.errors import SemanticError
from repro.bytecode.opcodes import Op
from repro.bytecode.program import align
from tests.conftest import compile_app


def compile_snippet(body, helpers="", extra_classes=""):
    source = (
        "class Main { public static void main(String[] args) { "
        + body
        + " } "
        + helpers
        + " } "
        + extra_classes
    )
    return compile_app(source)


def main_code(program):
    return program.classes["Main"].methods["main"].code


def ops_of(program):
    return [i.op for i in main_code(program)]


# -- type errors -------------------------------------------------------------------


@pytest.mark.parametrize(
    "body",
    [
        "int x = true;",
        "boolean b = 3;",
        "int x = null;",
        'int y = "text";',
        "Object o = 5;",
        "if (1) { }",
        "while (null) { }",
        "int z = 1 + true;",
        "boolean c = 1 && true;",
        'boolean d = "a" < "b";',
        "char c = 300;",
    ],
)
def test_type_errors_rejected(body):
    with pytest.raises(SemanticError):
        compile_snippet(body)


def test_unknown_class_rejected():
    with pytest.raises(SemanticError):
        compile_snippet("Ghost g = null;")


def test_unknown_method_rejected():
    with pytest.raises(SemanticError):
        compile_snippet("Object o = new Object(); o.fly();")


def test_unknown_field_rejected():
    with pytest.raises(SemanticError):
        compile_snippet("Object o = new Object(); int x = o.weight;")


def test_wrong_argument_count_rejected():
    with pytest.raises(SemanticError):
        compile_snippet("Math.min(1);")


def test_wrong_argument_type_rejected():
    with pytest.raises(SemanticError):
        compile_snippet("Math.min(1, true);")


def test_private_member_inaccessible():
    extra = "class Sealed { private int secret; private void hush() { } }"
    with pytest.raises(SemanticError):
        compile_snippet("Sealed s = new Sealed(); int x = s.secret;", extra_classes=extra)
    with pytest.raises(SemanticError):
        compile_snippet("Sealed s = new Sealed(); s.hush();", extra_classes=extra)


def test_this_in_static_context_rejected():
    with pytest.raises(SemanticError):
        compile_app("class Main { public static void main(String[] args) { this.hashCode(); } }")


def test_break_outside_loop_rejected():
    with pytest.raises(SemanticError):
        compile_snippet("break;")


def test_throw_non_throwable_rejected():
    with pytest.raises(SemanticError):
        compile_snippet("throw new Object();")


def test_catch_non_throwable_rejected():
    with pytest.raises(SemanticError):
        compile_snippet("try { } catch (Vector v) { }")


def test_return_type_checked():
    with pytest.raises(SemanticError):
        compile_app(
            'class Main { public static void main(String[] args) { } '
            'static int f() { return true; } }'
        )


def test_void_return_with_value_rejected():
    with pytest.raises(SemanticError):
        compile_app(
            "class Main { public static void main(String[] args) { } "
            "static void f() { return 1; } }"
        )


def test_duplicate_local_rejected():
    with pytest.raises(SemanticError):
        compile_snippet("int x = 1; int x = 2;")


def test_super_call_not_first_rejected():
    with pytest.raises(SemanticError):
        compile_app(
            "class A { A(int x) { } } "
            "class B extends A { B() { int y = 1; super(1); } } "
            "class Main { public static void main(String[] args) { } }"
        )


def test_missing_main_rejected():
    with pytest.raises(SemanticError):
        compile_app("class Main { void main() { } }")


def test_private_constructor_inaccessible():
    with pytest.raises(SemanticError):
        compile_snippet(
            "Hidden h = new Hidden();",
            extra_classes="class Hidden { private Hidden() { } }",
        )


# -- bytecode shape -------------------------------------------------------------------


def test_use_relevant_opcodes_emitted():
    source = """
    class Box { int v; }
    class Main {
        public static void main(String[] args) {
            Box b = new Box();
            b.v = 1;
            int x = b.v;
            int[] a = new int[3];
            a[0] = x;
            int y = a[0];
            int n = a.length;
            b.hashCode();
            synchronized (b) { }
        }
    }
    """
    program = compile_app(source)
    ops = [i.op for i in program.classes["Main"].methods["main"].code]
    for op in (
        Op.NEWINIT,
        Op.PUTFIELD,
        Op.GETFIELD,
        Op.NEWARRAY,
        Op.ASTORE,
        Op.ALOAD,
        Op.ARRAYLEN,
        Op.INVOKEV,
        Op.MONENTER,
        Op.MONEXIT,
    ):
        assert op in ops, op


def test_every_new_gets_a_distinct_site():
    program = compile_snippet("Object a = new Object(); Object b = new Object();")
    sites = [i.site for i in main_code(program) if i.op == Op.NEWINIT]
    assert len(sites) == 2
    assert sites[0] != sites[1]
    labels = [program.site(s).label for s in sites]
    assert all(label.startswith("Main.main:") for label in labels)


def test_string_concat_emits_tostr_and_concat():
    program = compile_snippet('String s = "n=" + 42;')
    ops = ops_of(program)
    assert Op.TOSTR in ops and Op.CONCAT in ops


def test_short_circuit_uses_jumps_not_eager_eval():
    program = compile_snippet(
        "boolean b = flag() && flag();", helpers="static boolean flag() { return true; }"
    )
    ops = ops_of(program)
    assert Op.JIF in ops


def test_site_registry_tracks_kinds():
    program = compile_snippet(
        'Object o = new Object(); int[] a = new int[2]; String s = "x" + 1;'
    )
    kinds = {site.kind for site in program.sites}
    assert {"new", "newarray", "string", "tostr", "concat"} <= kinds


def test_exception_table_for_try_catch():
    program = compile_snippet(
        "try { int x = 1 / 0; } catch (ArithmeticException e) { }"
    )
    table = program.classes["Main"].methods["main"].exception_table
    catches = [e for e in table if e.kind == "catch"]
    assert len(catches) == 1
    assert catches[0].exc_class == "ArithmeticException"
    assert 0 <= catches[0].start < catches[0].end <= catches[0].handler


def test_monitor_entry_in_exception_table():
    program = compile_snippet("synchronized (args) { int x = 1; }")
    table = program.classes["Main"].methods["main"].exception_table
    assert any(e.kind == "monitor" for e in table)


def test_default_ctor_synthesized():
    program = compile_app(
        "class Plain { } class Main { public static void main(String[] args) { } }"
    )
    ctor = program.classes["Plain"].ctor
    assert ctor is not None
    assert ctor.param_count == 0
    # implicit super() to Object
    assert any(i.op == Op.SUPERINIT for i in ctor.code)


def test_clinit_only_when_static_initializers_exist():
    program = compile_app(
        "class A { static int x = 3; } class B { static int y; } "
        "class Main { public static void main(String[] args) { } }"
    )
    assert program.classes["A"].clinit is not None
    assert program.classes["B"].clinit is None


def test_debug_info_slots():
    program = compile_snippet("int counter = 0; Object thing = null;")
    method = program.classes["Main"].methods["main"]
    assert "counter" in method.slot_names
    assert "thing" in method.slot_names
    assert method.slot_types[method.slot_names.index("thing")] == "ref"
    assert method.slot_types[method.slot_names.index("counter")] == "int"


def test_line_numbers_attached():
    program = compile_app(
        "class Main {\n"
        "    public static void main(String[] args) {\n"
        "        int x = 1;\n"
        "        int y = 2;\n"
        "    }\n"
        "}"
    )
    lines = {i.line for i in main_code(program)}
    assert 3 in lines and 4 in lines


def test_instance_size_of_string():
    program = compile_app("class Main { public static void main(String[] args) { } }")
    # String: header 8 + chars ref 4 + count int 4 = 16
    assert program.classes["String"].layout.instance_bytes == align(16)
