"""Semantic analysis: class table construction, resolution, subtyping."""

import pytest

from repro.errors import SemanticError
from repro.mjava import ast
from repro.mjava.parser import parse_program
from repro.mjava.sema import ClassTable, descriptor, type_repr
from repro.runtime.library import link


def table_of(source):
    return ClassTable(link(source))


def bare_table(source):
    return ClassTable(parse_program(source))


# -- construction errors -------------------------------------------------------


def test_duplicate_class_rejected():
    with pytest.raises(SemanticError):
        bare_table("class A { } class A { }")


def test_unknown_superclass_rejected():
    with pytest.raises(SemanticError):
        bare_table("class A extends Ghost { }")


def test_inheritance_cycle_rejected():
    with pytest.raises(SemanticError):
        bare_table("class A extends B { } class B extends A { }")


def test_self_inheritance_rejected():
    with pytest.raises(SemanticError):
        bare_table("class A extends A { }")


def test_duplicate_field_rejected():
    with pytest.raises(SemanticError):
        bare_table("class A { int x; int x; }")


def test_field_shadowing_rejected():
    with pytest.raises(SemanticError):
        bare_table("class A { int x; } class B extends A { int x; }")


def test_method_overloading_rejected():
    with pytest.raises(SemanticError):
        bare_table("class A { void m() { } void m(int x) { } }")


def test_multiple_constructors_rejected():
    with pytest.raises(SemanticError):
        bare_table("class A { A() { } A(int x) { } }")


def test_override_arity_mismatch_rejected():
    with pytest.raises(SemanticError):
        bare_table(
            "class A { void m(int x) { } } class B extends A { void m() { } }"
        )


def test_override_return_type_mismatch_rejected():
    with pytest.raises(SemanticError):
        bare_table(
            "class A { int m() { return 1; } } "
            "class B extends A { boolean m() { return true; } }"
        )


def test_override_staticness_mismatch_rejected():
    with pytest.raises(SemanticError):
        bare_table(
            "class A { void m() { } } class B extends A { static void m() { } }"
        )


def test_valid_override_accepted():
    table = bare_table(
        "class A { int m(int x) { return x; } } "
        "class B extends A { int m(int y) { return y + 1; } }"
    )
    assert table.resolve_method("B", "m")[0].name == "B"


# -- resolution ------------------------------------------------------------------


def test_field_resolution_walks_up():
    table = table_of("class A { int x; } class B extends A { } class C extends B { }")
    declaring, field = table.resolve_field("C", "x")
    assert declaring.name == "A"
    assert field.type == ast.INT


def test_method_resolution_picks_nearest():
    table = table_of(
        "class A { int m() { return 1; } } "
        "class B extends A { int m() { return 2; } } "
        "class C extends B { }"
    )
    assert table.resolve_method("C", "m")[0].name == "B"


def test_resolution_misses_return_none():
    table = table_of("class A { }")
    assert table.resolve_field("A", "ghost") is None
    assert table.resolve_method("A", "ghost") is None


def test_everything_is_subtype_of_object():
    table = table_of("class A { } class B extends A { }")
    assert table.is_subtype("B", "Object")
    assert table.is_subtype("String", "Object")
    assert table.is_subtype("B", "A")
    assert not table.is_subtype("A", "B")


# -- assignability -----------------------------------------------------------------


def test_null_assignable_to_references_only():
    table = table_of("class A { }")
    assert table.assignable(ast.ClassType("A"), ast.NULL_TYPE)
    assert table.assignable(ast.ArrayType(ast.INT), ast.NULL_TYPE)
    assert not table.assignable(ast.INT, ast.NULL_TYPE)


def test_char_widens_to_int_but_not_back():
    table = table_of("class A { }")
    assert table.assignable(ast.INT, ast.CHAR)
    assert not table.assignable(ast.CHAR, ast.INT)


def test_reference_arrays_covariant():
    table = table_of("class A { } class B extends A { }")
    a_arr = ast.ArrayType(ast.ClassType("A"))
    b_arr = ast.ArrayType(ast.ClassType("B"))
    assert table.assignable(a_arr, b_arr)
    assert not table.assignable(b_arr, a_arr)


def test_primitive_arrays_invariant():
    table = table_of("class A { }")
    assert not table.assignable(ast.ArrayType(ast.INT), ast.ArrayType(ast.CHAR))
    assert table.assignable(ast.ArrayType(ast.INT), ast.ArrayType(ast.INT))


def test_arrays_assignable_to_object():
    table = table_of("class A { }")
    assert table.assignable(ast.OBJECT, ast.ArrayType(ast.INT))


def test_subclasses_of():
    table = table_of("class A { } class B extends A { } class C extends B { }")
    assert set(table.subclasses_of("A")) == {"B", "C"}


# -- descriptors --------------------------------------------------------------------


def test_descriptors():
    assert descriptor(ast.INT) == "int"
    assert descriptor(ast.CHAR) == "char"
    assert descriptor(ast.BOOLEAN) == "boolean"
    assert descriptor(ast.VOID) == "void"
    assert descriptor(ast.ClassType("Foo")) == "ref"
    assert descriptor(ast.ArrayType(ast.INT)) == "ref"


def test_type_repr():
    assert type_repr(ast.ArrayType(ast.ArrayType(ast.ClassType("Foo")))) == "Foo[][]"
