"""Unit tests for the mini-Java lexer."""

import pytest

from repro.errors import LexError
from repro.mjava.lexer import tokenize
from repro.mjava.tokens import CHAR_LIT, EOF, IDENT, INT_LIT, STRING_LIT


def kinds(source):
    return [t.kind for t in tokenize(source)]


def test_empty_source_yields_only_eof():
    assert kinds("") == [EOF]


def test_whitespace_only():
    assert kinds("  \t\n\r  ") == [EOF]


def test_keywords_have_their_own_kind():
    assert kinds("class extends if else") == ["class", "extends", "if", "else", EOF]


def test_identifier_token():
    tokens = tokenize("fooBar _x x1")
    assert [t.kind for t in tokens[:3]] == [IDENT, IDENT, IDENT]
    assert [t.value for t in tokens[:3]] == ["fooBar", "_x", "x1"]


def test_keyword_prefix_identifier():
    tokens = tokenize("classy")
    assert tokens[0].kind == IDENT
    assert tokens[0].value == "classy"


def test_int_literal():
    tokens = tokenize("0 42 123456")
    assert [t.value for t in tokens[:3]] == [0, 42, 123456]
    assert all(t.kind == INT_LIT for t in tokens[:3])


def test_int_followed_by_letter_is_error():
    with pytest.raises(LexError):
        tokenize("12abc")


def test_char_literal_simple():
    token = tokenize("'a'")[0]
    assert token.kind == CHAR_LIT
    assert token.value == "a"


def test_char_literal_escapes():
    assert tokenize(r"'\n'")[0].value == "\n"
    assert tokenize(r"'\t'")[0].value == "\t"
    assert tokenize(r"'\\'")[0].value == "\\"
    assert tokenize(r"'\''")[0].value == "'"
    assert tokenize(r"'\0'")[0].value == "\0"


def test_char_literal_unterminated():
    with pytest.raises(LexError):
        tokenize("'ab'")
    with pytest.raises(LexError):
        tokenize("'a")


def test_empty_char_literal():
    with pytest.raises(LexError):
        tokenize("''")


def test_string_literal():
    token = tokenize('"hello world"')[0]
    assert token.kind == STRING_LIT
    assert token.value == "hello world"


def test_string_literal_escapes():
    assert tokenize(r'"a\nb"')[0].value == "a\nb"
    assert tokenize(r'"quote: \" done"')[0].value == 'quote: " done'


def test_string_unterminated():
    with pytest.raises(LexError):
        tokenize('"abc')
    with pytest.raises(LexError):
        tokenize('"abc\ndef"')


def test_unknown_escape_is_error():
    with pytest.raises(LexError):
        tokenize(r"'\q'")


def test_operators_longest_match():
    assert kinds("== = <= < >= > != ! && ||")[:-1] == [
        "==", "=", "<=", "<", ">=", ">", "!=", "!", "&&", "||",
    ]


def test_punctuation():
    assert kinds(". , ; ( ) { } [ ]")[:-1] == [
        ".", ",", ";", "(", ")", "{", "}", "[", "]",
    ]


def test_line_comment_skipped():
    assert kinds("a // comment here\nb") == [IDENT, IDENT, EOF]


def test_block_comment_skipped():
    assert kinds("a /* multi\nline */ b") == [IDENT, IDENT, EOF]


def test_unterminated_block_comment():
    with pytest.raises(LexError):
        tokenize("a /* never closed")


def test_positions_track_lines_and_columns():
    tokens = tokenize("a\n  b")
    assert (tokens[0].pos.line, tokens[0].pos.col) == (1, 1)
    assert (tokens[1].pos.line, tokens[1].pos.col) == (2, 3)


def test_unexpected_character():
    with pytest.raises(LexError):
        tokenize("a @ b")


def test_division_vs_comment():
    assert kinds("a / b") == [IDENT, "/", IDENT, EOF]
