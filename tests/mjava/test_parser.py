"""Unit tests for the mini-Java parser."""

import pytest

from repro.errors import ParseError
from repro.mjava import ast
from repro.mjava.parser import parse_program


def parse_class(body):
    program = parse_program("class C { " + body + " }")
    return program.classes[0]


def parse_method_stmts(body):
    cls = parse_class("void m() { " + body + " }")
    return cls.methods[0].body.stmts


def parse_expr(text):
    stmts = parse_method_stmts("x = " + text + ";")
    return stmts[0].value


def test_empty_class():
    program = parse_program("class Foo { }")
    assert len(program.classes) == 1
    cls = program.classes[0]
    assert cls.name == "Foo"
    assert cls.superclass is None


def test_class_with_superclass():
    cls = parse_program("class A extends B { }").classes[0]
    assert cls.superclass == "B"


def test_multiple_classes():
    program = parse_program("class A { } class B extends A { }")
    assert [c.name for c in program.classes] == ["A", "B"]


def test_field_declarations():
    cls = parse_class("int x; private Foo f; public static final int K = 3;")
    assert [f.name for f in cls.fields] == ["x", "f", "K"]
    assert cls.fields[0].mods.visibility == "package"
    assert cls.fields[1].mods.visibility == "private"
    assert cls.fields[2].mods.static and cls.fields[2].mods.final
    assert isinstance(cls.fields[2].init, ast.IntLit)


def test_array_types():
    cls = parse_class("int[] a; Foo[][] b;")
    assert cls.fields[0].type == ast.ArrayType(ast.INT)
    assert cls.fields[1].type == ast.ArrayType(ast.ArrayType(ast.ClassType("Foo")))


def test_method_declaration():
    cls = parse_class("protected int add(int a, int b) { return a + b; }")
    method = cls.methods[0]
    assert method.name == "add"
    assert method.mods.visibility == "protected"
    assert [p.name for p in method.params] == ["a", "b"]
    assert isinstance(method.body.stmts[0], ast.Return)


def test_void_method():
    cls = parse_class("void run() { }")
    assert cls.methods[0].return_type == ast.VOID


def test_native_method_has_no_body():
    cls = parse_class("public static native void println(String s);")
    method = cls.methods[0]
    assert method.mods.native
    assert method.body is None


def test_constructor():
    cls = parse_class("C(int n) { this.n = n; } int n;")
    assert len(cls.ctors) == 1
    assert cls.ctors[0].name == "C"


def test_super_call_statement():
    cls = parse_program("class D extends C { D() { super(1); } }").classes[0]
    stmt = cls.ctors[0].body.stmts[0]
    assert isinstance(stmt, ast.SuperCall)
    assert len(stmt.args) == 1


def test_var_decl_vs_expr_stmt():
    stmts = parse_method_stmts("Foo f; f.run(); int[] a; a[0] = 1;")
    assert isinstance(stmts[0], ast.VarDecl)
    assert isinstance(stmts[1], ast.ExprStmt)
    assert isinstance(stmts[2], ast.VarDecl)
    assert isinstance(stmts[3], ast.Assign)
    assert isinstance(stmts[3].target, ast.Index)


def test_if_else():
    stmts = parse_method_stmts("if (x > 0) y = 1; else y = 2;")
    node = stmts[0]
    assert isinstance(node, ast.If)
    assert isinstance(node.then, ast.Assign)
    assert isinstance(node.otherwise, ast.Assign)


def test_dangling_else_binds_to_nearest_if():
    stmts = parse_method_stmts("if (a) if (b) x = 1; else x = 2;")
    outer = stmts[0]
    assert outer.otherwise is None
    assert outer.then.otherwise is not None


def test_while_loop():
    stmts = parse_method_stmts("while (i < n) i = i + 1;")
    assert isinstance(stmts[0], ast.While)


def test_for_loop_full():
    stmts = parse_method_stmts("for (int i = 0; i < n; i = i + 1) { sum = sum + i; }")
    node = stmts[0]
    assert isinstance(node, ast.For)
    assert isinstance(node.init, ast.VarDecl)
    assert isinstance(node.cond, ast.Binary)
    assert isinstance(node.update, ast.Assign)


def test_for_loop_empty_parts():
    stmts = parse_method_stmts("for (;;) break;")
    node = stmts[0]
    assert node.init is None and node.cond is None and node.update is None
    assert isinstance(node.body, ast.Break)


def test_try_catch():
    stmts = parse_method_stmts(
        "try { risky(); } catch (NullPointerException e) { handle(e); } "
        "catch (Exception e2) { }"
    )
    node = stmts[0]
    assert isinstance(node, ast.Try)
    assert [c.exc_class for c in node.catches] == ["NullPointerException", "Exception"]


def test_try_without_catch_is_error():
    with pytest.raises(ParseError):
        parse_method_stmts("try { } x = 1;")


def test_throw():
    stmts = parse_method_stmts('throw new Exception("bad");')
    assert isinstance(stmts[0], ast.Throw)
    assert isinstance(stmts[0].value, ast.New)


def test_synchronized():
    stmts = parse_method_stmts("synchronized (lock) { count = count + 1; }")
    node = stmts[0]
    assert isinstance(node, ast.Synchronized)
    assert isinstance(node.monitor, ast.Name)


def test_precedence_arithmetic():
    expr = parse_expr("1 + 2 * 3")
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_precedence_logical():
    expr = parse_expr("a || b && c == d")
    assert expr.op == "||"
    assert expr.right.op == "&&"
    assert expr.right.right.op == "=="


def test_relational_chain():
    expr = parse_expr("a < b")
    assert expr.op == "<"


def test_unary_operators():
    expr = parse_expr("!done")
    assert isinstance(expr, ast.Unary) and expr.op == "!"
    neg = parse_expr("-x")
    assert isinstance(neg, ast.Unary) and neg.op == "-"


def test_negative_literal_folding():
    expr = parse_expr("-5")
    assert isinstance(expr, ast.IntLit)
    assert expr.value == -5


def test_new_object():
    expr = parse_expr("new Vector(10)")
    assert isinstance(expr, ast.New)
    assert expr.class_name == "Vector"
    assert len(expr.args) == 1


def test_new_array():
    expr = parse_expr("new int[20]")
    assert isinstance(expr, ast.NewArray)
    assert expr.element_type == ast.INT


def test_new_array_of_arrays():
    expr = parse_expr("new char[n][]")
    assert isinstance(expr, ast.NewArray)
    assert expr.element_type == ast.ArrayType(ast.CHAR)


def test_field_access_and_call_chain():
    expr = parse_expr("a.b.c(1).d")
    assert isinstance(expr, ast.FieldAccess)
    assert isinstance(expr.target, ast.Call)
    assert isinstance(expr.target.target, ast.FieldAccess)


def test_index_expression():
    expr = parse_expr("table[i + 1]")
    assert isinstance(expr, ast.Index)
    assert isinstance(expr.index, ast.Binary)


def test_cast_of_class_type():
    expr = parse_expr("(Vector) obj")
    assert isinstance(expr, ast.Cast)
    assert expr.type == ast.ClassType("Vector")


def test_cast_of_primitive():
    expr = parse_expr("(char) c")
    assert isinstance(expr, ast.Cast)
    assert expr.type == ast.CHAR


def test_parenthesized_name_plus_is_not_cast():
    expr = parse_expr("(a) + b")
    assert isinstance(expr, ast.Binary)
    assert expr.op == "+"


def test_instanceof():
    expr = parse_expr("x instanceof Vector")
    assert isinstance(expr, ast.InstanceOf)
    assert expr.class_name == "Vector"


def test_unqualified_call():
    expr = parse_expr("helper(1, 2)")
    assert isinstance(expr, ast.Call)
    assert expr.target is None


def test_super_method_call():
    expr = parse_expr("super.size()")
    assert isinstance(expr, ast.SuperMethodCall)


def test_this_expression():
    stmts = parse_method_stmts("this.x = 1;")
    assert isinstance(stmts[0].target, ast.FieldAccess)
    assert isinstance(stmts[0].target.target, ast.This)


def test_string_and_char_literals_in_expr():
    expr = parse_expr('"hi" + name')
    assert isinstance(expr.left, ast.StringLit)


def test_assignment_to_rvalue_is_error():
    with pytest.raises(ParseError):
        parse_method_stmts("1 + 2 = 3;")


def test_missing_semicolon_is_error():
    with pytest.raises(ParseError):
        parse_method_stmts("x = 1")


def test_positions_recorded():
    program = parse_program("class A {\n  void m() {\n    x = 1;\n  }\n}")
    method = program.classes[0].methods[0]
    assert method.body.stmts[0].pos.line == 3
