"""Array-element liveness, class hierarchy, indirect usage."""

from repro.analysis.array_liveness import logical_size_pairs, removal_points
from repro.analysis.hierarchy import ClassHierarchy
from repro.analysis.indirect_usage import indirectly_unused_fields
from repro.mjava.sema import ClassTable
from repro.runtime.library import link
from tests.conftest import compile_app


def table_of(source):
    return ClassTable(link(source))


# -- array liveness ------------------------------------------------------------


def test_vector_pattern_detected():
    """The library Vector is exactly the jess vector-like array."""
    table = table_of("class Dummy { }")
    pairs = logical_size_pairs(table, "Vector")
    assert ("data", "count") in pairs


def test_removal_points_are_the_decrements():
    table = table_of("class Dummy { }")
    points = removal_points(table, "Vector", ("data", "count"))
    assert any(method == "removeLast" for method, _ in points)


def test_unbounded_read_rejects_pair():
    table = table_of(
        """
        class Leaky {
            Object[] data;
            int count;
            Leaky() { data = new Object[8]; count = 0; }
            void pop() { count = count - 1; }
            Object peekRaw(int i) { return data[i]; }
        }
        """
    )
    assert logical_size_pairs(table, "Leaky") == []


def test_guarded_read_accepts_pair():
    table = table_of(
        """
        class Safe {
            Object[] data;
            int count;
            Safe() { data = new Object[8]; count = 0; }
            void pop() { count = count - 1; }
            Object peek(int i) {
                if (i < count) { return data[i]; }
                return null;
            }
            Object top() { return data[count - 1]; }
            void each() {
                for (int i = 0; i < count; i = i + 1) { data[i].hashCode(); }
            }
        }
        """
    )
    assert ("data", "count") in logical_size_pairs(table, "Safe")


def test_no_decrement_means_no_pair():
    table = table_of(
        """
        class GrowOnly {
            Object[] data;
            int count;
            GrowOnly() { data = new Object[8]; count = 0; }
            void add(Object o) { data[count] = o; count = count + 1; }
        }
        """
    )
    assert logical_size_pairs(table, "GrowOnly") == []


# -- hierarchy -------------------------------------------------------------------


def test_hierarchy_children_and_subtree():
    table = table_of(
        """
        class A { }
        class B extends A { }
        class C extends A { }
        class D extends B { }
        """
    )
    h = ClassHierarchy(table)
    assert h.children["A"] == ["B", "C"]
    assert h.subtree("A") == {"A", "B", "C", "D"}
    assert h.parent("D") == "B"
    assert h.ancestors("D") == ["B", "A", "Object"]


def test_hierarchy_overriders():
    table = table_of(
        """
        class A { int m() { return 1; } }
        class B extends A { int m() { return 2; } }
        class C extends A { }
        """
    )
    h = ClassHierarchy(table)
    assert h.overriders_of("A", "m") == ["B"]
    assert h.defining_class("C", "m") == "A"


def test_exception_classes_rooted_at_throwable():
    table = table_of("class Dummy { }")
    h = ClassHierarchy(table)
    assert "NullPointerException" in h.subtree("Throwable")
    assert "OutOfMemoryError" in h.subtree("Throwable")


# -- indirect usage ---------------------------------------------------------------


def test_javac_style_indirect_string():
    """§5.1's example: a field read only to copy into unused variables."""
    source = """
    class Unit {
        private String banner;
        private String copy;
        Unit() { banner = "x" + 1; }
        void snapshot() {
            String local = banner;
            copy = banner;
        }
    }
    class Main {
        public static void main(String[] args) {
            Unit u = new Unit();
            u.snapshot();
        }
    }
    """
    program = compile_app(source)
    indirect = indirectly_unused_fields(program)
    assert ("Unit", "banner") in indirect


def test_dereferenced_field_is_not_indirectly_unused():
    source = """
    class Unit {
        private String banner;
        Unit() { banner = "x" + 1; }
        int peek() { return banner.length(); }
    }
    class Main {
        public static void main(String[] args) { System.printInt(new Unit().peek()); }
    }
    """
    program = compile_app(source)
    assert ("Unit", "banner") not in indirectly_unused_fields(program)


def test_copy_to_used_local_blocks_indirect():
    source = """
    class Unit {
        private String banner;
        Unit() { banner = "x" + 1; }
        int use() {
            String local = banner;
            return local.length();
        }
    }
    class Main {
        public static void main(String[] args) { System.printInt(new Unit().use()); }
    }
    """
    program = compile_app(source)
    assert ("Unit", "banner") not in indirectly_unused_fields(program)
