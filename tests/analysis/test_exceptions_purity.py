"""Exception analysis (§5.5) and constructor purity."""

from repro.analysis.exceptions import ANY, ThrownExceptions
from repro.analysis.purity import ctor_purity
from repro.mjava.sema import ClassTable
from repro.runtime.library import link
from tests.conftest import compile_app


def thrown(source, cls, method):
    program = compile_app(source)
    return ThrownExceptions(program).of(cls, method)


def table_of(source):
    return ClassTable(link(source))


def test_division_may_throw_arithmetic():
    source = """
    class Main {
        public static void main(String[] args) { System.printInt(div(6, 2)); }
        static int div(int a, int b) { return a / b; }
    }
    """
    assert "ArithmeticException" in thrown(source, "Main", "div")


def test_caught_exception_does_not_escape():
    source = """
    class Main {
        public static void main(String[] args) { safeDiv(1, 0); }
        static int safeDiv(int a, int b) {
            try { return a / b; } catch (ArithmeticException e) { return 0; }
        }
    }
    """
    assert "ArithmeticException" not in thrown(source, "Main", "safeDiv")


def test_explicit_throw_propagates_through_calls():
    source = """
    class Main {
        public static void main(String[] args) { outer(); }
        static void outer() { inner(); }
        static void inner() { throw new NumberFormatException("x"); }
    }
    """
    assert "NumberFormatException" in thrown(source, "Main", "outer")


def test_catch_in_caller_stops_propagation():
    source = """
    class Main {
        public static void main(String[] args) { outer(); }
        static void outer() {
            try { inner(); } catch (RuntimeException e) { }
        }
        static void inner() { throw new NumberFormatException("x"); }
    }
    """
    assert "NumberFormatException" not in thrown(source, "Main", "outer")


def test_field_access_may_throw_npe():
    source = """
    class Box { int v; }
    class Main {
        public static void main(String[] args) { get(new Box()); }
        static int get(Box b) { return b.v; }
    }
    """
    assert "NullPointerException" in thrown(source, "Main", "get")


def test_allocation_may_throw_oom():
    source = """
    class Main {
        public static void main(String[] args) { make(); }
        static Object make() { return new Object(); }
    }
    """
    assert "OutOfMemoryError" in thrown(source, "Main", "make")


def test_program_handler_lookup():
    source_without = """
    class Main { public static void main(String[] args) { Object o = new Object(); } }
    """
    program = compile_app(source_without)
    exc = ThrownExceptions(program)
    assert not exc.program_has_handler_for("OutOfMemoryError")

    source_with = """
    class Main {
        public static void main(String[] args) {
            try { Object o = new Object(); } catch (OutOfMemoryError e) { }
        }
    }
    """
    program2 = compile_app(source_with)
    exc2 = ThrownExceptions(program2)
    assert exc2.program_has_handler_for("OutOfMemoryError")
    # handler for a supertype counts too
    source_super = """
    class Main {
        public static void main(String[] args) {
            try { Object o = new Object(); } catch (Throwable t) { }
        }
    }
    """
    assert ThrownExceptions(compile_app(source_super)).program_has_handler_for(
        "OutOfMemoryError"
    )


# -- purity -------------------------------------------------------------------


def test_simple_initializing_ctor_is_pure():
    table = table_of(
        """
        class Point { int x; int y; Point(int x, int y) { this.x = x; this.y = y; } }
        """
    )
    result = ctor_purity(table, "Point")
    assert result.pure
    assert result.lazy_safe


def test_ctor_allocating_own_arrays_is_pure():
    table = table_of(
        """
        class Buf {
            char[] data;
            int len;
            Buf(int n) {
                data = new char[n];
                for (int i = 0; i < n; i = i + 1) { data[i] = 'x'; }
                len = n;
            }
        }
        """
    )
    assert ctor_purity(table, "Buf").pure


def test_ctor_writing_static_is_impure():
    table = table_of(
        """
        class Counter {
            static int instances;
            Counter() { instances = instances + 1; }
        }
        """
    )
    result = ctor_purity(table, "Counter")
    assert not result.pure


def test_ctor_reading_static_is_pure_but_not_lazy_safe():
    table = table_of(
        """
        class Stamp {
            static int epoch = 5;
            int at;
            Stamp() { at = epoch; }
        }
        """
    )
    result = ctor_purity(table, "Stamp")
    assert result.pure
    assert result.reads_statics
    assert not result.lazy_safe


def test_ctor_calling_method_is_impure():
    table = table_of(
        """
        class Chatty { Chatty() { System.println("hi"); } }
        """
    )
    assert not ctor_purity(table, "Chatty").pure


def test_ctor_writing_other_object_is_impure():
    table = table_of(
        """
        class Registry { Object last; }
        class Item { Item(Registry r) { r.last = this; } }
        """
    )
    assert not ctor_purity(table, "Item").pure


def test_ctor_throwing_is_impure():
    table = table_of(
        """
        class Picky { Picky(int n) { if (n < 0) { throw new RuntimeException("neg"); } } }
        """
    )
    assert not ctor_purity(table, "Picky").pure


def test_purity_is_transitive_through_super_and_new():
    table = table_of(
        """
        class Base { int b; Base() { b = 1; } }
        class Inner { Inner() { System.println("side effect"); } }
        class CleanChild extends Base { CleanChild() { super(); } }
        class DirtyChild extends Base { Inner i; DirtyChild() { i = new Inner(); } }
        """
    )
    assert ctor_purity(table, "CleanChild").pure
    assert not ctor_purity(table, "DirtyChild").pure


def test_vector_and_hashtable_ctors_are_lazy_safe():
    """The jack transformation relies on these being postponable."""
    table = table_of("class Dummy { }")
    assert ctor_purity(table, "Vector").lazy_safe
    assert ctor_purity(table, "HashTable").lazy_safe
    assert ctor_purity(table, "StringBuilder").lazy_safe


def test_recursive_ctor_does_not_hang():
    table = table_of(
        """
        class Node { Node next; Node() { next = null; } }
        """
    )
    assert ctor_purity(table, "Node").pure
