"""Call graph: reachability, virtual targets, unreachable methods."""

from repro.analysis.callgraph import build_call_graph
from tests.conftest import compile_app


def test_main_and_callees_reachable():
    source = """
    class Main {
        public static void main(String[] args) { helper(); }
        static void helper() { }
        static void orphan() { }
    }
    """
    cg = build_call_graph(compile_app(source))
    assert cg.is_reachable("Main", "main")
    assert cg.is_reachable("Main", "helper")
    assert not cg.is_reachable("Main", "orphan")
    assert ("Main", "orphan") in cg.unreachable_methods()


def test_virtual_call_reaches_all_overriders():
    source = """
    class Shape { int area() { return 0; } }
    class Circle extends Shape { int area() { return 3; } }
    class Square extends Shape { int area() { return 4; } }
    class Main {
        public static void main(String[] args) {
            Shape s = new Circle();
            System.printInt(s.area());
        }
    }
    """
    cg = build_call_graph(compile_app(source))
    assert cg.is_reachable("Shape", "area")
    assert cg.is_reachable("Circle", "area")
    # CHA over-approximates: Square.area is considered a target too.
    assert cg.is_reachable("Square", "area")


def test_transitive_unreachability():
    source = """
    class Main {
        public static void main(String[] args) { }
        static void deadA() { deadB(); }
        static void deadB() { }
    }
    """
    cg = build_call_graph(compile_app(source))
    unreachable = cg.unreachable_methods()
    assert ("Main", "deadA") in unreachable
    assert ("Main", "deadB") in unreachable


def test_constructor_edges():
    source = """
    class Widget { Widget() { setup(); } void setup() { } }
    class Main {
        public static void main(String[] args) { Widget w = new Widget(); }
    }
    """
    cg = build_call_graph(compile_app(source))
    assert cg.is_reachable("Widget", "<init>")
    assert cg.is_reachable("Widget", "setup")


def test_clinit_is_root():
    source = """
    class Eager { static Object o = make(); static Object make() { return new Object(); } }
    class Main { public static void main(String[] args) { } }
    """
    cg = build_call_graph(compile_app(source))
    assert cg.is_reachable("Eager", "<clinit>")
    assert cg.is_reachable("Eager", "make")


def test_finalizer_reachable_when_class_instantiated():
    source = """
    class Res { public void finalize() { this.cleanup(); } void cleanup() { } }
    class Main { public static void main(String[] args) { Res r = new Res(); } }
    """
    cg = build_call_graph(compile_app(source))
    assert cg.is_reachable("Res", "finalize")
    assert cg.is_reachable("Res", "cleanup")


def test_callers_of():
    source = """
    class Main {
        public static void main(String[] args) { a(); b(); }
        static void a() { shared(); }
        static void b() { shared(); }
        static void shared() { }
    }
    """
    cg = build_call_graph(compile_app(source))
    callers = {c for c in cg.callers_of("Main", "shared")}
    assert ("Main", "a") in callers and ("Main", "b") in callers


def test_unreachable_excludes_library_by_default():
    source = "class Main { public static void main(String[] args) { } }"
    cg = build_call_graph(compile_app(source))
    assert all(cls == "Main" for cls, _ in cg.unreachable_methods())
