"""The generic dataflow solver: forward (reaching definitions) and
backward (liveness core) on hand-built and compiled CFGs."""

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import solve_backward, solve_forward
from repro.bytecode.opcodes import Op
from tests.conftest import compile_app


def method_of(source, class_name, method_name):
    program = compile_app(source, main_class=None)
    return program.classes[class_name].methods[method_name]


def reaching_definitions(method):
    """Classic forward may-analysis: which STORE instructions may have
    produced each slot's current value."""
    cfg = build_cfg(method)
    stores_by_slot = {}
    for pc, instr in enumerate(method.code):
        if instr.op == Op.STORE:
            stores_by_slot.setdefault(instr.args[0], set()).add(pc)

    def gen_kill(pc):
        instr = method.code[pc]
        if instr.op == Op.STORE:
            slot = instr.args[0]
            return frozenset({pc}), frozenset(stores_by_slot[slot] - {pc})
        return frozenset(), frozenset()

    return cfg, solve_forward(cfg, gen_kill)


def test_reaching_definitions_straight_line():
    method = method_of(
        "class C { int f() { int x = 1; x = 2; return x; } }", "C", "f"
    )
    cfg, (ins, outs) = reaching_definitions(method)
    stores = [pc for pc, i in enumerate(method.code) if i.op == Op.STORE]
    first, second = stores
    # after the second store, only it reaches
    assert second in outs[second]
    assert first not in outs[second]


def test_reaching_definitions_merge_at_join():
    source = """
    class C {
        int f(boolean b) {
            int x = 1;
            if (b) { x = 2; }
            return x;
        }
    }
    """
    method = method_of(source, "C", "f")
    cfg, (ins, outs) = reaching_definitions(method)
    slot_x = method.slot_names.index("x")
    stores = [
        pc for pc, i in enumerate(method.code) if i.op == Op.STORE and i.args == (slot_x,)
    ]
    # at the final load of x, both definitions may reach (the join)
    final_load = max(
        pc for pc, i in enumerate(method.code) if i.op == Op.LOAD and i.args == (slot_x,)
    )
    reaching = ins[final_load] & set(stores)
    assert len(reaching) == 2


def test_reaching_definitions_loop_fixpoint():
    source = """
    class C {
        int f(int n) {
            int x = 0;
            for (int i = 0; i < n; i = i + 1) { x = x + 1; }
            return x;
        }
    }
    """
    method = method_of(source, "C", "f")
    cfg, (ins, outs) = reaching_definitions(method)
    slot_x = method.slot_names.index("x")
    stores = [
        pc for pc, i in enumerate(method.code) if i.op == Op.STORE and i.args == (slot_x,)
    ]
    init, loop = stores
    # inside the loop body both the init and the loop store may reach
    body_load = min(
        pc
        for pc, i in enumerate(method.code)
        if i.op == Op.LOAD and i.args == (slot_x,)
    )
    assert {init, loop} <= ins[body_load] or {init, loop} <= outs[body_load] | ins[body_load]


def test_backward_boundary_applies_at_exits():
    method = method_of("class C { void f() { int x = 1; } }", "C", "f")
    cfg = build_cfg(method)

    def gen_kill(pc):
        return frozenset(), frozenset()

    ins, outs = solve_backward(cfg, gen_kill, boundary=frozenset({"token"}))
    # with identity transfer, the boundary fact flows everywhere
    assert all("token" in s for s in ins)


def test_forward_entry_fact_flows_through():
    method = method_of("class C { void f() { int x = 1; int y = 2; } }", "C", "f")
    cfg = build_cfg(method)

    def gen_kill(pc):
        return frozenset(), frozenset()

    ins, outs = solve_forward(cfg, gen_kill, entry=frozenset({"seed"}))
    assert "seed" in outs[len(method.code) - 1] or "seed" in ins[len(method.code) - 1]


def test_empty_method_handled():
    method = method_of("class C { native void f(); }", "C", "f")
    cfg = build_cfg(method)
    ins, outs = solve_forward(cfg, lambda pc: (frozenset(), frozenset()))
    assert ins == [] and outs == []


# ---------------------------------------------------------------------------
# must-analyses (intersection merge, TOP initialization)
# ---------------------------------------------------------------------------

from repro.analysis import dataflow
from repro.analysis.dataflow import solve_backward_must, solve_forward_must


def _definitely_stored(method):
    """gen = {slot} at each STORE: 'slots stored on every path so far'."""
    def gen_kill(pc):
        instr = method.code[pc]
        if instr.op == Op.STORE:
            return frozenset({instr.args[0]}), frozenset()
        return frozenset(), frozenset()
    return gen_kill


BRANCHY = """
class C {
    static int f(int x, int y) {
        if (x > 0) { x = 1; y = 5; } else { y = 2; }
        return y;
    }
}
"""
# params are not default-initialized, so stores only happen in the
# branches: y on both paths, x on the then-path only


def _reachable_pcs(cfg):
    seen = {0}
    stack = [0]
    while stack:
        pc = stack.pop()
        for succ in cfg.succs[pc]:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def test_forward_must_intersects_at_join():
    method = method_of(BRANCHY, "C", "f")
    cfg = build_cfg(method)
    slots = frozenset(range(method.nlocals))
    slot_x, slot_y = 0, 1

    may_ins, may_outs = solve_forward(cfg, _definitely_stored(method))
    must_ins, must_outs = solve_forward_must(cfg, _definitely_stored(method), slots)

    exit_pc = cfg.exits[0]
    # y is stored on both branches: definitely stored at the exit
    assert slot_y in must_outs[exit_pc]
    # x is stored on only one path: may, but not must
    assert slot_x in may_outs[exit_pc]
    assert slot_x not in must_outs[exit_pc]
    # must is a refinement of may on reachable code (both gen-only here)
    for pc in _reachable_pcs(cfg):
        assert must_outs[pc] <= may_outs[pc]


def test_forward_must_top_initialization_shrinks_only():
    method = method_of(BRANCHY, "C", "f")
    cfg = build_cfg(method)
    universe = frozenset(range(method.nlocals)) | {"sentinel"}
    _, outs = solve_forward_must(cfg, _definitely_stored(method), universe)
    # nothing ever gens the sentinel, so the greatest fixpoint drops it
    # from every reachable pc; unreachable code keeps TOP (vacuous)
    reachable = _reachable_pcs(cfg)
    for pc in range(len(method.code)):
        if pc in reachable:
            assert "sentinel" not in outs[pc]
        else:
            assert "sentinel" in outs[pc]


def test_backward_must_requires_all_paths_to_exit():
    method = method_of(BRANCHY, "C", "f")
    cfg = build_cfg(method)
    slots = frozenset(range(method.nlocals))
    slot_x, slot_y = 0, 1

    may_ins, _ = solve_backward(cfg, _definitely_stored(method))
    must_ins, _ = solve_backward_must(cfg, _definitely_stored(method), slots)

    # from the entry, every path stores y but only the then-path stores x
    assert slot_y in must_ins[0]
    assert slot_x in may_ins[0]
    assert slot_x not in must_ins[0]


def test_must_empty_method_handled():
    method = method_of("class C { native void f(); }", "C", "f")
    cfg = build_cfg(method)
    ins, outs = solve_forward_must(cfg, lambda pc: (frozenset(), frozenset()),
                                   frozenset({"u"}))
    assert ins == [] and outs == []


# ---------------------------------------------------------------------------
# worklist seeding: same fixpoint, fewer iterations
# ---------------------------------------------------------------------------

LOOPY = """
class C {
    static int sum(int n) {
        int s = 0;
        int i = 0;
        while (i < n) {
            int j = 0;
            while (j < i) {
                s = s + j;
                j = j + 1;
            }
            i = i + 1;
        }
        return s;
    }
}
"""


def test_rpo_seeding_matches_linear_fixpoint_with_fewer_iterations():
    method = method_of(LOOPY, "C", "sum")
    cfg = build_cfg(method)
    gen_kill = _definitely_stored(method)

    results = {}
    iteration_counts = {}
    for order in ("rpo", "linear"):
        dataflow.stats.reset()
        fwd = solve_forward(cfg, gen_kill, order=order)
        bwd = solve_backward(cfg, gen_kill, order=order)
        fwd_must = solve_forward_must(cfg, gen_kill, frozenset(range(method.nlocals)),
                                      order=order)
        results[order] = (fwd, bwd, fwd_must)
        iteration_counts[order] = dataflow.stats.total_iterations

    assert results["rpo"] == results["linear"]  # unique fixpoint
    assert iteration_counts["rpo"] < iteration_counts["linear"]


def test_solver_stats_track_last_and_total():
    method = method_of(LOOPY, "C", "sum")
    cfg = build_cfg(method)
    dataflow.stats.reset()
    solve_forward(cfg, lambda pc: (frozenset(), frozenset()))
    first = dataflow.stats.last_iterations
    assert first >= len(method.code)
    solve_backward(cfg, lambda pc: (frozenset(), frozenset()))
    assert dataflow.stats.total_iterations == first + dataflow.stats.last_iterations
