"""The generic dataflow solver: forward (reaching definitions) and
backward (liveness core) on hand-built and compiled CFGs."""

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import solve_backward, solve_forward
from repro.bytecode.opcodes import Op
from tests.conftest import compile_app


def method_of(source, class_name, method_name):
    program = compile_app(source, main_class=None)
    return program.classes[class_name].methods[method_name]


def reaching_definitions(method):
    """Classic forward may-analysis: which STORE instructions may have
    produced each slot's current value."""
    cfg = build_cfg(method)
    stores_by_slot = {}
    for pc, instr in enumerate(method.code):
        if instr.op == Op.STORE:
            stores_by_slot.setdefault(instr.args[0], set()).add(pc)

    def gen_kill(pc):
        instr = method.code[pc]
        if instr.op == Op.STORE:
            slot = instr.args[0]
            return frozenset({pc}), frozenset(stores_by_slot[slot] - {pc})
        return frozenset(), frozenset()

    return cfg, solve_forward(cfg, gen_kill)


def test_reaching_definitions_straight_line():
    method = method_of(
        "class C { int f() { int x = 1; x = 2; return x; } }", "C", "f"
    )
    cfg, (ins, outs) = reaching_definitions(method)
    stores = [pc for pc, i in enumerate(method.code) if i.op == Op.STORE]
    first, second = stores
    # after the second store, only it reaches
    assert second in outs[second]
    assert first not in outs[second]


def test_reaching_definitions_merge_at_join():
    source = """
    class C {
        int f(boolean b) {
            int x = 1;
            if (b) { x = 2; }
            return x;
        }
    }
    """
    method = method_of(source, "C", "f")
    cfg, (ins, outs) = reaching_definitions(method)
    slot_x = method.slot_names.index("x")
    stores = [
        pc for pc, i in enumerate(method.code) if i.op == Op.STORE and i.args == (slot_x,)
    ]
    # at the final load of x, both definitions may reach (the join)
    final_load = max(
        pc for pc, i in enumerate(method.code) if i.op == Op.LOAD and i.args == (slot_x,)
    )
    reaching = ins[final_load] & set(stores)
    assert len(reaching) == 2


def test_reaching_definitions_loop_fixpoint():
    source = """
    class C {
        int f(int n) {
            int x = 0;
            for (int i = 0; i < n; i = i + 1) { x = x + 1; }
            return x;
        }
    }
    """
    method = method_of(source, "C", "f")
    cfg, (ins, outs) = reaching_definitions(method)
    slot_x = method.slot_names.index("x")
    stores = [
        pc for pc, i in enumerate(method.code) if i.op == Op.STORE and i.args == (slot_x,)
    ]
    init, loop = stores
    # inside the loop body both the init and the loop store may reach
    body_load = min(
        pc
        for pc, i in enumerate(method.code)
        if i.op == Op.LOAD and i.args == (slot_x,)
    )
    assert {init, loop} <= ins[body_load] or {init, loop} <= outs[body_load] | ins[body_load]


def test_backward_boundary_applies_at_exits():
    method = method_of("class C { void f() { int x = 1; } }", "C", "f")
    cfg = build_cfg(method)

    def gen_kill(pc):
        return frozenset(), frozenset()

    ins, outs = solve_backward(cfg, gen_kill, boundary=frozenset({"token"}))
    # with identity transfer, the boundary fact flows everywhere
    assert all("token" in s for s in ins)


def test_forward_entry_fact_flows_through():
    method = method_of("class C { void f() { int x = 1; int y = 2; } }", "C", "f")
    cfg = build_cfg(method)

    def gen_kill(pc):
        return frozenset(), frozenset()

    ins, outs = solve_forward(cfg, gen_kill, entry=frozenset({"seed"}))
    assert "seed" in outs[len(method.code) - 1] or "seed" in ins[len(method.code) - 1]


def test_empty_method_handled():
    method = method_of("class C { native void f(); }", "C", "f")
    cfg = build_cfg(method)
    ins, outs = solve_forward(cfg, lambda pc: (frozenset(), frozenset()))
    assert ins == [] and outs == []
