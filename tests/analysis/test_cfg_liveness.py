"""CFG construction and local liveness analysis."""

from repro.analysis.cfg import build_cfg
from repro.analysis.liveness import liveness
from repro.bytecode.opcodes import Op
from tests.conftest import compile_app


def method_of(source, class_name, method_name):
    program = compile_app(source, main_class=None)
    return program.classes[class_name].methods[method_name]


def test_straightline_cfg():
    method = method_of(
        "class C { int f(int a) { int b = a + 1; return b; } }", "C", "f"
    )
    cfg = build_cfg(method)
    # every non-terminal instruction falls through
    for pc in range(len(cfg) - 1):
        if method.code[pc].op not in (Op.RET, Op.RETV, Op.JUMP):
            assert pc + 1 in cfg.succs[pc]
    assert cfg.exits


def test_branch_creates_two_successors():
    method = method_of(
        "class C { int f(boolean b) { if (b) { return 1; } return 2; } }", "C", "f"
    )
    cfg = build_cfg(method)
    jif_pcs = [pc for pc, i in enumerate(method.code) if i.op == Op.JIF]
    assert jif_pcs
    assert len(cfg.succs[jif_pcs[0]]) == 2


def test_exception_edge_to_handler():
    source = """
    class C {
        int f(Object o) {
            try { return o.hashCode(); }
            catch (NullPointerException e) { return 0; }
        }
    }
    """
    method = method_of(source, "C", "f")
    cfg = build_cfg(method)
    handler = method.exception_table[0].handler
    invoke_pcs = [pc for pc, i in enumerate(method.code) if i.op == Op.INVOKEV]
    assert any(handler in cfg.succs[pc] for pc in invoke_pcs)


def test_liveness_param_live_until_last_use():
    method = method_of(
        "class C { int f(int a) { int b = a + a; return b; } }", "C", "f"
    )
    live = liveness(method)
    slot_a = method.slot_names.index("a")
    assert slot_a in live.live_in[0]
    # after the last LOAD of a, it is dead
    last_load = max(
        pc for pc, i in enumerate(method.code) if i.op == Op.LOAD and i.args == (slot_a,)
    )
    assert live.dead_after(last_load, slot_a)


def test_liveness_through_loop_keeps_variable_alive():
    source = """
    class C {
        int sum(int n) {
            int total = 0;
            for (int i = 0; i < n; i = i + 1) { total = total + i; }
            return total;
        }
    }
    """
    method = method_of(source, "C", "sum")
    live = liveness(method)
    slot_total = method.slot_names.index("total")
    # total is live around the loop: at the condition test (first load
    # of i) the next use of total may be the body read or the return.
    slot_i = method.slot_names.index("i")
    loads_of_i = [
        pc for pc, ins in enumerate(method.code) if ins.op == Op.LOAD and ins.args == (slot_i,)
    ]
    assert loads_of_i
    assert slot_total in live.live_in[loads_of_i[0]]
    # ...but inside `total = total + i`, after the read of total and
    # before the store, total is momentarily dead on the redefining path.
    body_load_total = [
        pc
        for pc, ins in enumerate(method.code)
        if ins.op == Op.LOAD and ins.args == (slot_total,)
    ][0]
    assert live.dead_after(body_load_total, slot_total)


def test_dead_reference_detected_after_last_use():
    source = """
    class C {
        void f() {
            Object big = new Object();
            big.hashCode();
            this.spin();
        }
        void spin() { }
    }
    """
    method = method_of(source, "C", "f")
    live = liveness(method)
    slot = method.slot_names.index("big")
    assert live.is_ref_slot(slot)
    points = live.last_use_points(slot)
    assert len(points) == 1
    # 'big' is dead after its hashCode() receiver load
    assert live.dead_after(points[0], slot)


def test_variable_reassigned_later_is_dead_in_between():
    source = """
    class C {
        int f() {
            int x = 1;
            int y = x + 1;
            x = 10;
            return x + y;
        }
    }
    """
    method = method_of(source, "C", "f")
    live = liveness(method)
    slot_x = method.slot_names.index("x")
    # Between the use at 'x + 1' and the redefinition, x is dead: find
    # the STORE that redefines x and check x not live-in there.
    stores = [
        pc for pc, i in enumerate(method.code) if i.op == Op.STORE and i.args == (slot_x,)
    ]
    redefinition = stores[1]
    assert slot_x not in live.live_in[redefinition]


def test_unused_variable_never_live():
    method = method_of(
        "class C { void f() { Object unused = new Object(); this.g(); } void g() { } }",
        "C",
        "f",
    )
    live = liveness(method)
    slot = method.slot_names.index("unused")
    assert all(slot not in s for s in live.live_in)
    assert live.last_use_points(slot) == []
