"""Usage analysis: written-never-read fields, visibility scoping."""

from repro.analysis.callgraph import build_call_graph
from repro.analysis.usage import field_usage
from tests.conftest import compile_app


def test_static_written_never_read_is_found():
    source = """
    class Config {
        static Object wasted = new Object();
        static Object used = new Object();
    }
    class Main {
        public static void main(String[] args) { Config.used.hashCode(); }
    }
    """
    usage = field_usage(compile_app(source))
    dead = usage.written_never_read_statics()
    assert ("Config", "wasted") in dead
    assert ("Config", "used") not in dead


def test_locale_statics_found_as_never_read():
    """The paper's JDK example: unread Locale constants."""
    source = """
    class Main { public static void main(String[] args) { } }
    """
    usage = field_usage(compile_app(source))
    dead = dict.fromkeys(usage.written_never_read_statics())
    assert ("Locale", "ENGLISH") in dead
    assert ("Locale", "FRENCH") in dead


def test_locale_read_via_getstatic_counts():
    source = """
    class Main {
        public static void main(String[] args) {
            System.println(Locale.ENGLISH.getLanguage());
        }
    }
    """
    usage = field_usage(compile_app(source))
    dead = usage.written_never_read_statics()
    assert ("Locale", "ENGLISH") not in dead
    assert ("Locale", "FRENCH") in dead


def test_instance_field_written_never_read():
    source = """
    class Record {
        private String debugInfo;
        private int id;
        Record(int id) { this.id = id; this.debugInfo = "record " + id; }
        public int getId() { return id; }
    }
    class Main {
        public static void main(String[] args) {
            Record r = new Record(7);
            System.printInt(r.getId());
        }
    }
    """
    usage = field_usage(compile_app(source))
    dead = usage.written_never_read_instance_fields()
    assert ("Record", "debugInfo") in dead
    assert ("Record", "id") not in dead


def test_private_field_read_scoped_to_declaring_class():
    """Two private fields named 'cache': one read in its class, one not.
    Same-name reads in *other* classes must not mark a private field
    used."""
    source = """
    class A {
        private Object cache;
        void set() { cache = new Object(); }
    }
    class B {
        private Object cache;
        void set() { cache = new Object(); }
        Object get() { return cache; }
    }
    class Main {
        public static void main(String[] args) {
            new A().set();
            new B().get();
        }
    }
    """
    usage = field_usage(compile_app(source))
    assert not usage.is_instance_field_read("A", "cache")
    assert usage.is_instance_field_read("B", "cache")


def test_usage_refined_by_call_graph():
    """§5.4: a read inside an unreachable method does not count when the
    analysis is restricted to reachable methods — the raytrace 'get
    method never invoked' case."""
    source = """
    class Scene {
        private Object detail;
        Scene() { detail = new Object(); }
        public Object getDetail() { return detail; }
    }
    class Main {
        public static void main(String[] args) { Scene s = new Scene(); }
    }
    """
    program = compile_app(source)
    whole = field_usage(program)
    assert whole.is_instance_field_read("Scene", "detail")
    cg = build_call_graph(program)
    assert not cg.is_reachable("Scene", "getDetail")
    refined = field_usage(program, cg.reachable_compiled_methods())
    assert not refined.is_instance_field_read("Scene", "detail")
    assert ("Scene", "detail") in refined.written_never_read_instance_fields()


def test_static_resolution_walks_superclass():
    source = """
    class Base { static int shared = 1; }
    class Derived extends Base { }
    class Main {
        public static void main(String[] args) {
            System.printInt(Derived.shared);
        }
    }
    """
    usage = field_usage(compile_app(source))
    # The read through Derived resolves to Base.shared.
    assert ("Base", "shared") not in usage.written_never_read_statics()
