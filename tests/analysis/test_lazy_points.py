"""Minimal-code-insertion points for lazy allocation (§5.1)."""

from repro.analysis.lazy_points import first_use_sites
from repro.mjava.sema import ClassTable
from repro.runtime.library import link


def table_of(source):
    return ClassTable(link(source))


SOURCE = """
class Box {
    Vector items;
    Box() { items = new Vector(8); }
    void add(Object o) { items.add(o); }
    int size() { return items.size(); }
    void reset() { items = null; }
    boolean check() { return items == null; }
}
"""


def test_reads_found_with_member_and_line():
    table = table_of(SOURCE)
    sites = first_use_sites(table, "Box", "items")
    members = {(s.member, s.kind) for s in sites}
    assert ("add", "name") in members
    assert ("size", "name") in members
    assert ("check", "name") in members
    assert all(s.class_name == "Box" for s in sites)
    assert all(s.line > 0 for s in sites)


def test_plain_writes_are_not_first_uses():
    table = table_of(SOURCE)
    sites = first_use_sites(table, "Box", "items")
    # the ctor's "items = new Vector(8)" and reset's "items = null" are
    # writes, not uses
    assert all(s.member not in ("<init>", "reset") for s in sites)


def test_this_qualified_reads_found():
    table = table_of(
        """
        class Box {
            Vector items;
            int size() { return this.items.size(); }
        }
        """
    )
    sites = first_use_sites(table, "Box", "items")
    assert any(s.kind == "this-field" for s in sites)


def test_private_field_scope_is_declaring_class():
    table = table_of(
        """
        class A {
            private Vector data;
            int size() { return data.size(); }
        }
        class B {
            Vector data;
            int size() { return data.size(); }
        }
        """
    )
    sites = first_use_sites(table, "A", "data")
    assert {s.class_name for s in sites} == {"A"}


def test_package_field_read_through_receiver_counted():
    table = table_of(
        """
        class Box { Vector items; }
        class Client {
            int probe(Box box) { return box.items.size(); }
        }
        """
    )
    sites = first_use_sites(table, "Box", "items")
    assert any(s.class_name == "Client" and s.kind == "field-access" for s in sites)


def test_unknown_field_returns_empty():
    table = table_of(SOURCE)
    assert first_use_sites(table, "Box", "ghost") == []


def test_inherited_field_reads_bind_to_declaring_class():
    table = table_of(
        """
        class Base { Vector shared; }
        class Child extends Base {
            int size() { return shared.size(); }
        }
        """
    )
    sites = first_use_sites(table, "Base", "shared")
    assert any(s.class_name == "Child" for s in sites)
