"""Heap liveness through access graphs (DRAG006/DRAG007).

Unit coverage for the bounded access-graph lattice, the whole-program
abstract interpretation (aliasing via allocation-site region merge,
interprocedural summaries, recursion), the soundness escape hatch, and
the differential gate: every heap patch the planner emits must verify
stdout-identical with non-increasing drag on every benchmark.
"""

import pytest

from repro.analysis.access_graph import ROOT, AGNode, AccessGraph
from repro.benchmarks.registry import all_benchmarks, get_benchmark
from repro.lint import lint_program
from repro.lint.passes import AnalysisContext
from repro.lint.render import render_text
from repro.runtime.library import link
from repro.transform.pipeline import OptimizationPipeline
from repro.transform.planners import HeapAssignNullPlanner


def heap_of(source, main_class="Main"):
    return AnalysisContext(link(source), main_class).heap_liveness


# -- access-graph lattice ---------------------------------------------------


def test_extend_builds_path():
    g = AccessGraph.empty("db").extend("index", 1).extend("buckets", 2)
    assert g.paths() == ["db.index.buckets"]
    assert len(g) == 2
    assert g.frontier == frozenset([AGNode("buckets", 2)])


def test_extend_around_a_loop_is_bounded():
    g1 = AccessGraph.empty("head").extend("next", 5)
    g2 = g1.extend("next", 5)
    g3 = g2.extend("next", 5)
    # the (label, site) key merge is the widening: growth stops
    assert g2 == g3
    assert len(g3) == 1
    assert g3.paths() == ["head.next"]
    # a path continuing past the loop shows the cycle cut
    cut = g3.extend("data", 7)
    assert "head.next.data" in cut.paths()
    assert any("…" in p for p in cut.paths())


def test_union_joins_paths_and_checks_roots():
    a = AccessGraph.empty("x").extend("f", 1)
    b = AccessGraph.empty("x").extend("g", 2)
    u = a.union(b)
    assert set(u.paths()) == {"x.f", "x.g"}
    with pytest.raises(ValueError):
        a.union(AccessGraph.empty("y"))


def test_factorize_splits_prefix_and_remainder():
    g = AccessGraph.empty("x").extend("f", 1).extend("g", 2)
    prefix, remainders = g.factorize("f")
    assert prefix.paths() == ["x.f"]
    assert prefix.frontier == frozenset([AGNode("f", 1)])
    assert len(remainders) == 1
    assert remainders[0].root == "f@1"
    assert "f@1.g" in remainders[0].paths()


def test_empty_graph_paths_are_just_the_root():
    assert AccessGraph.empty("v").paths() == ["v"]
    assert AccessGraph.empty("v").is_empty
    assert ROOT not in AccessGraph.empty("v").nodes


# -- whole-program analysis -------------------------------------------------

DEAD_STORE = """
class Payload { int v; Payload() { v = 1; } }
class Main {
    public static void main(String[] args) {
        Payload[] solo = new Payload[4];
        solo[0] = new Payload();
        System.printInt(7);
    }
}
"""


def test_dead_array_store_is_flagged():
    heap = heap_of(DEAD_STORE)
    assert not heap.degraded, heap.notes
    stores = heap.dead_heap_stores()
    mine = [s for s in stores if s.class_name == "Main" and s.method_name == "main"]
    assert mine, stores
    assert "Payload" in mine[0].value_classes
    assert "pins" in mine[0].explain


ALIASED_STORE = """
class Payload { int v; Payload() { v = 1; } }
class Main {
    public static void main(String[] args) {
        Payload[] solo = new Payload[4];
        Payload[] alias = solo;
        solo[0] = new Payload();
        if (alias[0] != null) {
            System.printInt(1);
        }
        System.printInt(7);
    }
}
"""


def test_alias_read_through_merged_region_keeps_store_live():
    heap = heap_of(ALIASED_STORE)
    assert not heap.degraded, heap.notes
    # the read goes through `alias`, the store through `solo`: the
    # allocation-site region merge must identify them
    assert not [s for s in heap.dead_heap_stores() if s.class_name == "Main"]


HOLDER = """
class Payload { int v; Payload() { v = 1; } }
class Holder {
    Vector items;
    Holder() { items = new Vector(4); }
    void add(Payload p) { items.add(p); }
    int size() { return items.size(); }
}
"""

SUMMARY_KEEPS_FIELD = HOLDER + """
class Main {
    public static void main(String[] args) {
        Holder h = new Holder();
        h.add(new Payload());
        System.printInt(h.size());
    }
}
"""


def test_interprocedural_summary_keeps_field_live_to_last_call():
    heap = heap_of(SUMMARY_KEEPS_FIELD)
    assert not heap.degraded, heap.notes
    # size() reads `items` (callee summary): no insertion point may be
    # proposed before the line of that final call
    last_call_line = 1 + SUMMARY_KEEPS_FIELD.splitlines().index(
        "        System.printInt(h.size());"
    )
    for entry in heap.droppable_entries():
        if entry.field == "items":
            assert min(entry.lines) >= last_call_line, entry


DROPPABLE_FIELD = HOLDER + """
class Main {
    public static void main(String[] args) {
        Holder h = new Holder();
        h.add(new Payload());
        int n = h.size();
        int pad = 0;
        for (int i = 0; i < 6; i = i + 1) {
            char[] buf = new char[50];
            pad = pad + buf.length;
        }
        System.printInt(n + pad);
    }
}
"""


def test_droppable_entry_after_interprocedural_last_use():
    heap = heap_of(DROPPABLE_FIELD)
    assert not heap.degraded, heap.notes
    entries = [e for e in heap.droppable_entries() if e.field == "items"]
    assert entries, heap.droppable_entries()
    entry = entries[0]
    assert (entry.class_name, entry.method_name, entry.var_name) == ("Main", "main", "h")
    assert entry.owner_class == "Holder"
    assert entry.lines
    assert "Holder.size" in entry.last_use or "Vector" in entry.last_use
    assert any("Holder.<init>" in label or "Vector" in label for label in entry.pinned_labels)
    assert "pattern 4" in entry.explain


RECURSIVE = """
class Node {
    Node next;
    int v;
    Node(Node next, int v) { this.next = next; this.v = v; }
}
class Rec {
    Node build(int n) {
        if (n <= 0) { return null; }
        return new Node(build(n - 1), n);
    }
    int sum(Node head) {
        if (head == null) { return 0; }
        return head.v + sum(head.next);
    }
}
class Main {
    public static void main(String[] args) {
        Rec r = new Rec();
        System.printInt(r.sum(r.build(5)));
    }
}
"""


def test_recursive_structure_converges_without_false_verdicts():
    heap = heap_of(RECURSIVE)
    assert not heap.degraded, heap.notes
    # `next` is read by the recursive sum(): never a dead-store verdict
    assert not [s for s in heap.dead_heap_stores() if s.token == "next"]
    assert "next" in heap.live_tokens


# -- soundness escape hatch -------------------------------------------------

UNSUMMARIZABLE = """
class A { void poke() { } }
class B { int poke() { return 1; } }
class Payload { int v; Payload() { v = 1; } }
class Main {
    public static void main(String[] args) {
        A a = null;
        if (args.length > 9) {
            a.poke();
        }
        Payload[] solo = new Payload[4];
        solo[0] = new Payload();
        System.printInt(3);
    }
}
"""


def test_unsummarizable_call_degrades_to_top_with_no_verdicts():
    heap = heap_of(UNSUMMARIZABLE)
    assert heap.degraded
    assert any("degraded to TOP" in note for note in heap.notes)
    # the dead store in main must NOT be reported once degraded: TOP
    # means "everything may be read", never a wrong "dead" verdict
    assert heap.dead_heap_stores() == []
    assert heap.droppable_entries() == []


def test_degradation_note_is_visible_in_lint_explain():
    result = lint_program(link(UNSUMMARIZABLE), "Main")
    assert not result.by_rule("DRAG006")
    assert not result.by_rule("DRAG007")
    text = render_text(result, explain=True)
    assert "degraded to TOP" in text


# -- benchmark gates --------------------------------------------------------


@pytest.mark.parametrize("name", sorted(all_benchmarks()))
def test_benchmarks_analyze_without_degradation(name):
    bench = get_benchmark(name)
    heap = AnalysisContext(link(bench.original), bench.main_class).heap_liveness
    assert not heap.degraded, heap.notes


@pytest.mark.parametrize("name", sorted(all_benchmarks()))
def test_heap_patches_verify_differentially(name):
    """The differential gate: every DRAG006/DRAG007-driven patch must
    verify stdout-identical with non-increasing drag, on every
    benchmark the planner touches."""
    bench = get_benchmark(name)
    pipeline = OptimizationPipeline(
        link(bench.original),
        bench.main_class,
        args=bench.args_for("primary"),
        interval_bytes=bench.interval_bytes,
        max_cycles=1,
        verify=True,
        strategies=[HeapAssignNullPlanner()],
    )
    result = pipeline.run()
    assert not result.rolled_back(), [o.detail for o in result.rolled_back()]
    assert not result.cycles[0].failed(), [o.detail for o in result.cycles[0].failed()]
    for cycle in result.cycles:
        if cycle.drag_after is not None:
            assert cycle.drag_after <= cycle.drag_before


def test_db_default_pipeline_plans_verified_heap_patch():
    """The paper found no transformation for db (§4.1); the heap
    analysis cracks it: at least one verified heap patch, and measured
    drag strictly decreases."""
    bench = get_benchmark("db")
    pipeline = OptimizationPipeline(
        link(bench.original),
        bench.main_class,
        args=bench.args_for("primary"),
        interval_bytes=bench.interval_bytes,
        max_cycles=1,
        verify=True,
    )
    result = pipeline.run()
    heap = [o for o in result.applied() if o.patch.strategy == "heap-assign-null"]
    assert len(heap) >= 1, result.cycles[0].describe_plan()
    assert result.drag_after < result.drag_before


def test_cache_heap_patch_strictly_reduces_drag():
    """The cache benchmark is de-draggable only through the heap:
    `store` stays live to the last line, so no per-local rewrite
    applies — yet `store.sessions = null` verifies and saves drag."""
    bench = get_benchmark("cache")
    pipeline = OptimizationPipeline(
        link(bench.original),
        bench.main_class,
        args=bench.args_for("primary"),
        interval_bytes=bench.interval_bytes,
        max_cycles=1,
        verify=True,
        strategies=[HeapAssignNullPlanner()],
    )
    result = pipeline.run()
    heap = [o for o in result.applied() if o.patch.kind == "assign-null-heap-field"]
    assert heap, result.cycles[0].describe_plan()
    assert "store.sessions = null" in heap[0].detail
    assert result.drag_after < result.drag_before
