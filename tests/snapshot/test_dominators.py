"""Dominators and retained sizes vs. the definition itself.

The oracle is MAT's: the retained size of ``v`` is the number of bytes
that become unreachable when ``v`` is deleted from the graph — no
dominator machinery, just two reachability sweeps. The fast path
(Cooper–Harvey–Kennedy idoms + one reverse-RPO sweep) must agree on
every node of every randomized graph.
"""

import random

from repro.snapshot.dominators import (
    DominatorTree,
    immediate_dominators,
    retained_sizes,
    reverse_postorder,
)


def _reachable_bytes(succ, sizes, root=0, removed=None):
    """Total size over nodes reachable from ``root``, optionally with
    one node deleted (its edges die with it)."""
    seen = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node in seen or node == removed:
            continue
        seen.add(node)
        stack.extend(succ[node])
    return sum(sizes[v] for v in seen)


def _oracle_retained(succ, sizes, node, root=0):
    return _reachable_bytes(succ, sizes, root) - _reachable_bytes(
        succ, sizes, root, removed=node
    )


def _random_graph(rng, n):
    """A connected-ish digraph: a random tree spine (every node
    reachable) plus extra cross/back/forward edges creating shared and
    cyclic structure."""
    succ = [[] for _ in range(n)]
    for v in range(1, n):
        succ[rng.randrange(v)].append(v)
    for _ in range(n):
        src, dst = rng.randrange(n), rng.randrange(n)
        if src != dst:
            succ[src].append(dst)
    sizes = [0] + [rng.choice([8, 16, 24, 64, 128]) for _ in range(n - 1)]
    return succ, sizes


def test_diamond_shared_node_dominated_by_fork():
    # 0 -> 1 -> 3, 0 -> 2 -> 3: node 3 is doubly reachable, so neither
    # branch retains it — only the fork (the root) does.
    succ = [[1, 2], [3], [3], []]
    sizes = [0, 10, 20, 40]
    tree = DominatorTree(succ, sizes)
    assert tree.idom[3] == 0
    assert tree.retained[1] == 10
    assert tree.retained[2] == 20
    assert tree.retained[0] == 70


def test_chain_retains_suffix():
    succ = [[1], [2], [3], []]
    sizes = [0, 8, 16, 32]
    tree = DominatorTree(succ, sizes)
    assert tree.retained == [56, 56, 48, 32]
    assert tree.dominator_chain(3) == [3, 2, 1, 0]
    assert tree.subtree(1) == [1, 2, 3]


def test_cycle_is_handled():
    # 0 -> 1 <-> 2; the cycle hangs off 1, so 1 retains both.
    succ = [[1], [2], [1]]
    sizes = [0, 8, 16]
    tree = DominatorTree(succ, sizes)
    assert tree.idom[1] == 0 and tree.idom[2] == 1
    assert tree.retained[1] == 24


def test_unreachable_nodes_get_no_idom():
    succ = [[1], [], [1]]  # node 2 is unreachable from 0
    sizes = [0, 8, 16]
    tree = DominatorTree(succ, sizes)
    assert tree.idom[2] is None
    assert not tree.reachable(2)
    assert tree.retained[0] == 8


def test_reverse_postorder_parents_precede_children():
    rng = random.Random(7)
    succ, _sizes = _random_graph(rng, 60)
    order = reverse_postorder(succ)
    position = {node: i for i, node in enumerate(order)}
    idom = immediate_dominators(succ)
    for node in order:
        if node == 0:
            continue
        assert position[idom[node]] < position[node]


def test_deep_chain_no_recursion_limit():
    n = 50_000
    succ = [[v + 1] for v in range(n - 1)] + [[]]
    sizes = [1] * n
    tree = DominatorTree(succ, sizes)
    assert tree.retained[0] == n
    assert tree.retained[n - 1] == 1


def test_retained_matches_remove_and_recount_oracle():
    """The acceptance property: on randomized heaps, dominator-subtree
    retained sizes equal the naive delete-``v``-and-recount answer for
    every reachable node."""
    rng = random.Random(20010617)  # PLDI 2001
    for trial in range(25):
        n = rng.randrange(5, 40)
        succ, sizes = _random_graph(rng, n)
        tree = DominatorTree(succ, sizes)
        for node in range(1, n):
            if not tree.reachable(node):
                continue
            assert tree.retained[node] == _oracle_retained(succ, sizes, node), (
                f"trial {trial}: node {node} of graph {succ} sizes {sizes}"
            )


def test_retained_sizes_standalone_api():
    succ = [[1, 2], [3], [3], []]
    sizes = [0, 10, 20, 40]
    order = reverse_postorder(succ)
    idom = immediate_dominators(succ)
    retained = retained_sizes(sizes, idom, order)
    assert retained[0] == 70
