"""RetainerCutPlanner end-to-end: the snapshot-enabled pipeline plans
dominating-reference cuts from DRAG008 evidence, differentially
verifies them, and keeps only the verified wins."""

import pytest

from repro.benchmarks import get_benchmark
from repro.mjava.pretty import pretty_print
from repro.runtime.library import link
from repro.transform.patch import APPLIED
from repro.transform.pipeline import OptimizationPipeline
from repro.transform.planners import RetainerCutPlanner, default_strategies


@pytest.fixture(scope="module")
def strings_result():
    bench = get_benchmark("strings")
    pipeline = OptimizationPipeline(
        link(bench.original),
        bench.main_class,
        args=bench.primary_args,
        interval_bytes=bench.interval_bytes,
        strategies=[RetainerCutPlanner()],
        snapshot=True,
    )
    return bench, pipeline.run()


def test_plans_and_verifies_container_cuts(strings_result):
    """The acceptance criterion: at least one retainer-cut patch is
    planned from snapshot evidence and survives differential
    verification end-to-end."""
    _bench, result = strings_result
    applied = result.applied()
    assert applied, "no retainer-cut patch survived verification"
    for outcome in applied:
        patch = outcome.patch
        assert patch.strategy == "retainer-cut"
        assert patch.kind == "assign-null-heap-field"
        assert outcome.verification is not None and outcome.verification.ok
    fields = {o.patch.params["field_name"] for o in applied}
    assert "sessions" in fields


def test_verified_cut_reduces_drag(strings_result):
    _bench, result = strings_result
    assert result.drag_after is not None
    assert result.drag_after < result.drag_before
    # Cutting the registry after its last use frees the whole session
    # table for the export phase: the drop is large, not marginal.
    assert result.drag_after < 0.6 * result.drag_before


def test_revised_source_contains_the_cut(strings_result):
    _bench, result = strings_result
    source = pretty_print(result.revised)
    assert "registry.sessions = null;" in source


def test_retainer_cut_not_in_default_strategies():
    """The static-only pipeline must stay byte-identical to the
    Advisor: snapshot-driven planning is strictly opt-in."""
    assert not any(
        isinstance(s, RetainerCutPlanner) for s in default_strategies()
    )
    bench = get_benchmark("strings")
    pipeline = OptimizationPipeline(
        link(bench.original), bench.main_class, snapshot=True
    )
    assert any(isinstance(s, RetainerCutPlanner) for s in pipeline.strategies)
