"""Snapshot codec: round-trip bit-identity and truncation tolerance."""

import io

import pytest

from repro.snapshot import (
    HeapSnapshot,
    SnapshotError,
    SnapshotNode,
    SnapshotWriter,
    read_snapshots,
    write_snapshots,
)
from repro.snapshot.codec import FLAG_EXCLUDED, FLAG_SYNTHETIC, MAGIC


def _sample_snapshots():
    """Two snapshots exercising every field: shared strings, absent
    site labels, flags, array edges, multi-edges."""
    first = HeapSnapshot(4096, "interval")
    first.nodes.append(SnapshotNode("<root>", None, 0, FLAG_SYNTHETIC))
    first.nodes.append(SnapshotNode("Database", "Db.main:38", 16))
    first.nodes.append(SnapshotNode("Vector", "Database.<init>:12", 16))
    first.nodes.append(SnapshotNode("Object[]", "Vector.ensureCapacity:213", 88))
    first.nodes.append(SnapshotNode("String", None, 24, FLAG_EXCLUDED))
    first.root.edges.append((1, "local Db.main"))
    first.root.edges.append((4, "interned"))
    first.nodes[1].edges.append((2, "records"))
    first.nodes[2].edges.append((3, "data"))
    first.nodes[3].edges.append((4, "[]"))

    second = HeapSnapshot(8192, "end")
    second.nodes.append(SnapshotNode("<root>", None, 0, FLAG_SYNTHETIC))
    second.nodes.append(SnapshotNode("Database", "Db.main:38", 16))
    second.root.edges.append((1, "local Db.main"))
    return [first, second]


def _serialize(snapshots, metadata=None):
    buf = io.BytesIO()
    with SnapshotWriter(buf, metadata=metadata) as writer:
        for snapshot in snapshots:
            writer.write(snapshot)
    return buf.getvalue()


def test_round_trip_structure(tmp_path):
    path = tmp_path / "heap.rhs"
    write_snapshots(path, _sample_snapshots(), metadata={"program": "db.mj"})
    loaded = read_snapshots(path, strict=True)
    assert loaded.complete and not loaded.truncated
    assert loaded.metadata == {"program": "db.mj"}
    originals = _sample_snapshots()
    assert len(loaded.snapshots) == len(originals)
    for got, want in zip(loaded.snapshots, originals):
        assert got.clock == want.clock
        assert got.reason == want.reason
        assert got.node_count == want.node_count
        assert got.edge_count == want.edge_count
        assert got.total_bytes == want.total_bytes
        for g, w in zip(got.nodes, want.nodes):
            assert g.type_name == w.type_name
            assert g.site_label == w.site_label
            assert g.size == w.size
            assert g.flags == w.flags
            assert g.edges == w.edges
    assert loaded.snapshots[0].root.synthetic
    assert loaded.snapshots[0].nodes[4].excluded


def test_round_trip_bit_identity(tmp_path):
    """parse(serialize(x)) re-serializes to the identical bytes: the
    lazily-built string table reproduces ids in order of appearance."""
    original = _serialize(_sample_snapshots(), metadata={"run": 1})
    path = tmp_path / "heap.rhs"
    path.write_bytes(original)
    loaded = read_snapshots(path, strict=True)
    again = _serialize(loaded.snapshots, metadata=loaded.metadata)
    assert again == original


def test_truncated_tail_keeps_complete_snapshots(tmp_path):
    full = _serialize(_sample_snapshots())
    path = tmp_path / "torn.rhs"
    # Chop into the middle of the second snapshot's frames: well past
    # the first ENDSNAP, well before END.
    path.write_bytes(full[: len(full) - 6])
    loaded = read_snapshots(path)
    assert loaded.truncated and not loaded.complete
    assert len(loaded.snapshots) == 1
    assert loaded.snapshots[0].clock == 4096
    with pytest.raises(SnapshotError):
        read_snapshots(path, strict=True)


def test_missing_end_frame_is_truncated(tmp_path):
    """Truncation at an exact frame boundary (no torn frame) must still
    be flagged: the END frame never arrived."""
    buf = io.BytesIO()
    writer = SnapshotWriter(buf)
    for snapshot in _sample_snapshots():
        writer.write(snapshot)
    # No writer.close(): both snapshots are complete but END is absent.
    path = tmp_path / "crashed.rhs"
    path.write_bytes(buf.getvalue())
    loaded = read_snapshots(path)
    assert len(loaded.snapshots) == 2
    assert loaded.truncated and not loaded.complete
    with pytest.raises(SnapshotError):
        read_snapshots(path, strict=True)


def test_every_truncation_point_is_tolerated(tmp_path):
    """Non-strict reads never raise, whatever byte the file dies at,
    and never hallucinate a snapshot whose ENDSNAP was cut off."""
    full = _serialize(_sample_snapshots())
    header_end = full.index(b'}') + 1  # end of the JSON header
    path = tmp_path / "cut.rhs"
    for cut in range(header_end, len(full)):
        path.write_bytes(full[:cut])
        loaded = read_snapshots(path)
        assert len(loaded.snapshots) <= 2
        assert loaded.truncated
        for snapshot in loaded.snapshots:
            assert snapshot.reason in ("interval", "end")


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "junk.rhs"
    path.write_bytes(b"NOPE" + b"\x00" * 16)
    with pytest.raises(SnapshotError):
        read_snapshots(path)
    assert MAGIC == b"RHS1"
