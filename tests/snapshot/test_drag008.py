"""DRAG008 high-retained-container: fires only with snapshot evidence,
names the dominating reference, and hands the applier a usable
insertion payload."""

import pytest

from repro.benchmarks import get_benchmark
from repro.core.analyzer import DragAnalysis
from repro.core.profiler import profile_program
from repro.lint import lint_program
from repro.lint.render import render, to_json, to_sarif
from repro.runtime.library import link
from repro.mjava.compiler import compile_program
from repro.snapshot import SnapshotRecorder, analyze_snapshot


@pytest.fixture(scope="module")
def strings_evidence():
    bench = get_benchmark("strings")
    program = link(bench.original)
    compiled = compile_program(program, main_class=bench.main_class)
    recorder = SnapshotRecorder()
    profile = profile_program(
        compiled,
        bench.primary_args,
        interval_bytes=bench.interval_bytes,
        max_heap=bench.max_heap,
        snapshotter=recorder,
    )
    peak = max(recorder.snapshots, key=lambda s: s.total_bytes)
    return program, bench, analyze_snapshot(peak), DragAnalysis(profile.records)


def test_silent_without_snapshot(strings_evidence):
    program, bench, _snapshot, _drag = strings_evidence
    result = lint_program(program, bench.main_class)
    assert not result.by_rule("DRAG008")


def test_fires_with_snapshot_on_strings(strings_evidence):
    program, bench, snapshot, drag = strings_evidence
    result = lint_program(program, bench.main_class, snapshot=snapshot, drag=drag)
    findings = result.by_rule("DRAG008")
    assert findings
    fields = {d.extra["insertion"]["field_name"] for d in findings}
    assert "sessions" in fields
    top = result.by_rule("DRAG008")[0]
    assert top.span.class_name == "Strings"
    assert top.span.member == "main"
    insertion = top.extra["insertion"]
    assert insertion["owner_class"] == "SessionRegistry"
    assert insertion["var_name"] == "registry"
    assert insertion["lines"], "needs an insertion line for the applier"
    assert top.extra["retained_bytes"] > 0
    assert 0 < top.extra["retained_share"] <= 1
    assert top.extra["chain"].startswith("<root>")
    assert top.extra["pinned_sites"], "drag evidence should name pinned sites"
    assert "= null" in top.suggestion


def test_insertion_line_is_last_mention(strings_evidence):
    """The cut goes after the holder's last use — the seal/report line,
    not the declaration."""
    program, bench, snapshot, drag = strings_evidence
    result = lint_program(program, bench.main_class, snapshot=snapshot, drag=drag)
    line = result.by_rule("DRAG008")[0].extra["insertion"]["lines"][0]
    source_lines = bench.original.splitlines()
    assert "registry.size()" in source_lines[line - 1]


def test_top_cap_applies_across_formats(strings_evidence):
    program, bench, snapshot, drag = strings_evidence
    result = lint_program(program, bench.main_class, snapshot=snapshot, drag=drag)
    total = len(result.sorted())
    assert total >= 2
    assert len(to_json(result, top=1)["diagnostics"]) == 1
    assert len(to_sarif(result, top=1)["runs"][0]["results"]) == 1
    text = render(result, "text", top=1)
    assert f"(showing top 1)" in text
    # top=None shows everything.
    assert len(to_json(result)["diagnostics"]) == total
