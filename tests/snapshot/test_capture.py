"""Capture at deep-GC safepoints: graph shape, report content, and the
zero-cost guarantee (profiles are bit-identical with capture on)."""

import pytest

from repro.benchmarks import get_benchmark
from repro.benchmarks.runner import compile_benchmark
from repro.core.analyzer import DragAnalysis
from repro.core.profiler import profile_program
from repro.snapshot import (
    SnapshotRecorder,
    analyze_snapshot,
    read_snapshots,
    snapshot_report,
    snapshot_summary,
)


def _profile_with_snapshots(name, out=None):
    bench = get_benchmark(name)
    program = compile_benchmark(bench, revised=False)
    recorder = SnapshotRecorder(out=out, buffered=True)
    profile = profile_program(
        program,
        bench.primary_args,
        interval_bytes=bench.interval_bytes,
        max_heap=bench.max_heap,
        snapshotter=recorder,
    )
    recorder.close()
    return bench, profile, recorder


@pytest.fixture(scope="module")
def db_run():
    return _profile_with_snapshots("db")


def test_db_captures_at_every_safepoint_plus_end(db_run):
    _bench, profile, recorder = db_run
    assert recorder.capture_count == len(recorder.snapshots)
    assert recorder.capture_count >= 2
    reasons = {s.reason for s in recorder.snapshots}
    assert reasons == {"interval", "end"}
    # Snapshots ride the deep-GC byte clock, monotonically.
    clocks = [s.clock for s in recorder.snapshots]
    assert clocks == sorted(clocks)


def test_graph_shape(db_run):
    _bench, _profile, recorder = db_run
    peak = max(recorder.snapshots, key=lambda s: s.total_bytes)
    assert peak.root.synthetic and peak.root.size == 0
    # Root edges are labeled with provenance.
    kinds = {label.split()[0] for _dst, label in peak.root.edges}
    assert "local" in kinds
    # Every edge targets a real node index.
    for node in peak.nodes:
        for dst, _label in node.edges:
            assert 0 < dst < peak.node_count


def test_capture_does_not_perturb_the_profile(db_run):
    """The convention the whole integration rests on: capture only
    reads the heap, so the record stream is identical with it on."""
    bench, profile, _recorder = db_run
    program = compile_benchmark(bench, revised=False)
    plain = profile_program(
        program,
        bench.primary_args,
        interval_bytes=bench.interval_bytes,
        max_heap=bench.max_heap,
    )
    def flat(records):
        return [
            tuple(getattr(r, field) for field in type(r).__slots__)
            for r in records
        ]

    assert flat(plain.records) == flat(profile.records)
    assert plain.end_time == profile.end_time


def test_db_report_names_the_retaining_container(db_run):
    """The acceptance check: on db the report names a container
    retaining dragged objects, with its retained size."""
    _bench, profile, recorder = db_run
    peak = max(recorder.snapshots, key=lambda s: s.total_bytes)
    report = snapshot_report(peak, drag_analysis=DragAnalysis(profile.records))
    assert "Database" in report
    assert "retained" in report and "% of reachable" in report
    assert "dominating reference" in report
    assert "pins dragged site" in report
    assert "chain: <root>" in report


def test_db_double_reachable_records_have_no_single_cut(db_run):
    """db's DbRecords hang off both the Vector and the HashTable, so
    the dominator analysis must refuse to attribute them to either
    container — the reason the paper's db rewriting is a wash."""
    _bench, _profile, recorder = db_run
    peak = max(recorder.snapshots, key=lambda s: s.total_bytes)
    analysis = analyze_snapshot(peak)
    by_type = {}
    for i, node in enumerate(analysis.nodes):
        by_type.setdefault(node.type_name, []).append(i)
    vectors = [i for i in by_type.get("Vector", [])]
    assert vectors, "db snapshot lost its Vector"
    assert by_type.get("DbRecord"), "db snapshot lost its records"
    for record in by_type["DbRecord"]:
        dom = analysis.tree.idom[record]
        # The idom is the Database (the common ancestor of both paths)
        # or the super-root (when a frame local also holds the record)
        # — never either container.
        assert analysis.nodes[dom].type_name in ("Database", "<root>")


def test_strings_single_path_containers_are_cuttable():
    """The strings benchmark exists to give DRAG008 prey: sessions are
    reachable only via registry.sessions, agent strings only via
    registry.byUser, so both containers carry a dominating reference."""
    _bench, profile, recorder = _profile_with_snapshots("strings")
    peak = max(recorder.snapshots, key=lambda s: s.total_bytes)
    analysis = analyze_snapshot(peak)
    domrefs = set()
    for i in analysis.top_retained(6):
        ref = analysis.dominating_reference(i)
        if ref is not None:
            owner, label = ref
            domrefs.add((analysis.nodes[owner].type_name, label))
    assert ("SessionRegistry", "sessions") in domrefs
    assert ("SessionRegistry", "byUser") in domrefs
    # And the big one pins the session allocation site with real drag.
    drag = DragAnalysis(profile.records)
    sessions_vec = next(
        i for i in analysis.top_retained(6)
        if analysis.dominating_reference(i) is not None
        and analysis.dominating_reference(i)[1] == "sessions"
    )
    pinned = analysis.pinned_drag_sites(sessions_vec, drag)
    assert any("StringSession" in label for label, _drag, _bytes in pinned)


def test_stream_to_file_round_trips(tmp_path, db_run):
    bench = get_benchmark("db")
    path = tmp_path / "db.rhs"
    program = compile_benchmark(bench, revised=False)
    recorder = SnapshotRecorder(out=str(path), metadata={"benchmark": "db"})
    profile_program(
        program,
        bench.primary_args,
        interval_bytes=bench.interval_bytes,
        max_heap=bench.max_heap,
        snapshotter=recorder,
    )
    recorder.close()
    # Streaming mode buffers nothing in memory.
    assert recorder.snapshots == []
    loaded = read_snapshots(path, strict=True)
    assert loaded.complete
    assert len(loaded.snapshots) == recorder.capture_count
    assert loaded.metadata["benchmark"] == "db"
    _bench, _profile, buffered = db_run
    for got, want in zip(loaded.snapshots, buffered.snapshots):
        assert got.clock == want.clock
        assert got.node_count == want.node_count
        assert got.total_bytes == want.total_bytes
    summary = snapshot_summary(loaded)
    assert summary["snapshots"] == recorder.capture_count
    assert summary["latest"]["top_retainers"]
